// Pins the PR's core perf claim: after warm-up, the steady-state
// request loop performs ZERO heap allocations per on_request, and
// Strategy::reset() performs no per-task allocation either.
//
// Built as its own binary (hetsched_alloc_tests) because it replaces
// the global operator new/delete with counting versions — that must
// not leak into the main test binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"
#include "sim/strategy.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Counting global allocator. Counts every operator new; delete is left
// alone (frees are fine in the hot loop — only allocations regress).
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hetsched {
namespace {

std::unique_ptr<Strategy> make_named(const std::string& name,
                                     std::uint64_t seed) {
  constexpr std::uint32_t kN = 24;
  constexpr std::uint32_t kWorkers = 4;
  if (name.find("Outer") != std::string::npos) {
    OuterStrategyOptions options;
    options.phase2_fraction = 0.2;
    return make_outer_strategy(name, OuterConfig{kN}, kWorkers, seed, options);
  }
  MatmulStrategyOptions options;
  options.phase2_fraction = 0.2;
  return make_matmul_strategy(name, MatmulConfig{kN}, kWorkers, seed, options);
}

/// Full drain through the scratch API; returns requests served. Uses a
/// stack bitmask for liveness so the drain itself cannot allocate.
std::uint64_t drain(Strategy& s, Assignment& scratch) {
  std::uint64_t served = 0;
  std::uint32_t retired = 0;
  std::uint32_t w = 0;
  std::uint64_t alive = ~std::uint64_t{0};  // workers() <= 64 in this test
  while (retired < s.workers()) {
    if ((alive >> w) & 1) {
      if (s.on_request(w, scratch)) {
        ++served;
      } else {
        alive &= ~(std::uint64_t{1} << w);
        ++retired;
      }
    }
    w = (w + 1) % s.workers();
  }
  return served;
}

class AllocFree : public ::testing::TestWithParam<const char*> {};

TEST_P(AllocFree, SteadyStateRequestLoopDoesNotAllocate) {
  auto strategy = make_named(GetParam(), 4242);
  Assignment scratch;
  // Warm-up drain: grows the scratch vectors and any per-worker state
  // to their high-water marks.
  const std::uint64_t warm_served = drain(*strategy, scratch);
  ASSERT_GT(warm_served, 0u);
  if (!strategy->reset(4242)) {
    GTEST_SKIP() << GetParam() << " does not support reset()";
  }

  g_alloc_count.store(0, std::memory_order_relaxed);
  const std::uint64_t served = drain(*strategy, scratch);
  const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(allocs, 0u) << "second drain served " << served
                        << " requests but allocated " << allocs << " times";
  EXPECT_EQ(served, warm_served);
}

TEST_P(AllocFree, ResetAfterWarmupDoesNotAllocate) {
  auto strategy = make_named(GetParam(), 7);
  Assignment scratch;
  drain(*strategy, scratch);
  if (!strategy->reset(7)) {
    GTEST_SKIP() << GetParam() << " does not support reset()";
  }
  drain(*strategy, scratch);

  g_alloc_count.store(0, std::memory_order_relaxed);
  ASSERT_TRUE(strategy->reset(7));
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperStrategies, AllocFree,
    ::testing::Values("RandomOuter", "SortedOuter", "DynamicOuter",
                      "DynamicOuter2Phases", "RandomMatrix", "SortedMatrix",
                      "DynamicMatrix", "DynamicMatrix2Phases"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

}  // namespace
}  // namespace hetsched
