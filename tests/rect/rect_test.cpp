#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "platform/platform.hpp"
#include "rect/rect_analysis.hpp"
#include "rect/rect_problem.hpp"
#include "rect/rect_strategies.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

TEST(RectProblem, TaskIdRoundTrips) {
  const RectConfig config{7, 13};
  for (std::uint32_t i = 0; i < 7; ++i) {
    for (std::uint32_t j = 0; j < 13; ++j) {
      const auto [ri, rj] = rect_task_coords(config, rect_task_id(config, i, j));
      EXPECT_EQ(ri, i);
      EXPECT_EQ(rj, j);
    }
  }
}

TEST(RectProblem, AspectPenalty) {
  EXPECT_DOUBLE_EQ(rect_aspect_penalty(RectConfig{100, 100}), 1.0);
  // 4:1 aspect: (4+1)/(2*2) = 1.25.
  EXPECT_DOUBLE_EQ(rect_aspect_penalty(RectConfig{400, 100}), 1.25);
  EXPECT_DOUBLE_EQ(rect_aspect_penalty(RectConfig{100, 400}), 1.25);
}

TEST(RectProblem, ValidateRejectsDegenerate) {
  EXPECT_THROW(validate(RectConfig{0, 10}), std::invalid_argument);
  EXPECT_THROW(validate(RectConfig{10, 0}), std::invalid_argument);
}

TEST(DynamicRect, ProportionalAcquisitionKeepsFractionsClose) {
  DynamicRectStrategy strategy(RectConfig{40, 160}, 1, 1);
  for (int step = 0; step < 100; ++step) {
    ASSERT_TRUE(strategy.on_request(0).has_value());
    const auto [fr, fc] = strategy.coverage(0);
    // Fractions differ by at most one acquisition's worth.
    EXPECT_NEAR(fr, fc, 1.0 / 40.0 + 1e-12) << "step " << step;
  }
}

TEST(DynamicRect, ServesEveryTaskOnce) {
  DynamicRectStrategy strategy(RectConfig{9, 17}, 3, 2);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 3; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      for (const TaskId id : a->tasks) EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), 9u * 17u);
}

TEST(DynamicRect, SquareCaseMatchesPaperStep) {
  // On a square domain the proportional rule alternates row/column, so
  // two consecutive single-index acquisitions behave like the paper's
  // one pair acquisition.
  DynamicRectStrategy strategy(RectConfig{10, 10}, 1, 3);
  std::uint64_t blocks = 0;
  std::uint64_t tasks = 0;
  while (auto a = strategy.on_request(0)) {
    blocks += a->blocks.size();
    tasks += a->tasks.size();
  }
  EXPECT_EQ(tasks, 100u);
  EXPECT_EQ(blocks, 20u);  // single worker gets every block once
}

TEST(PointwiseRect, SortedServesLexicographically) {
  PointwiseRectStrategy strategy(RectConfig{3, 4}, 1, 1,
                                 PointwiseRectStrategy::Order::kSorted);
  for (TaskId expect = 0; expect < 12; ++expect) {
    const auto a = strategy.on_request(0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->tasks[0], expect);
  }
}

TEST(PointwiseRect, RandomServesAllOnce) {
  PointwiseRectStrategy strategy(RectConfig{6, 11}, 2, 5,
                                 PointwiseRectStrategy::Order::kRandom);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 2; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      seen.insert(a->tasks[0]);
    }
  }
  EXPECT_EQ(seen.size(), 66u);
}

TEST(RectFactory, BuildsEveryStrategy) {
  for (const char* name :
       {"RandomRect", "SortedRect", "DynamicRect", "DynamicRect2Phases"}) {
    auto s = make_rect_strategy(name, RectConfig{8, 12}, 2, 1, 0.05);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
    EXPECT_EQ(s->total_tasks(), 96u);
  }
  EXPECT_THROW(make_rect_strategy("Nope", RectConfig{4, 4}, 1, 1),
               std::invalid_argument);
}

TEST(RectSimulation, DynamicBeatsRandomOnWideDomain) {
  Rng rng(derive_stream(3, "speeds"));
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 10, rng);
  auto run = [&](const char* name) {
    auto s = make_rect_strategy(name, RectConfig{50, 200}, 10, 7, 0.02);
    return simulate(*s, platform).total_blocks;
  };
  EXPECT_LT(run("DynamicRect2Phases"), run("RandomRect"));
  EXPECT_LT(run("DynamicRect"), run("RandomRect"));
}

TEST(RectAnalysis, SquareCaseMatchesOuterAnalysis) {
  // R = C must reduce exactly to the paper's square model.
  const std::vector<double> rs(20, 0.05);
  RectAnalysis rect(rs, RectConfig{100, 100});
  // Compare against the known square anchors.
  const auto opt = rect.optimal_beta();
  EXPECT_NEAR(opt.x, 4.39, 0.05);
  EXPECT_NEAR(opt.f, 2.17, 0.05);
  EXPECT_DOUBLE_EQ(rect.aspect_penalty(), 1.0);
}

TEST(RectAnalysis, AspectPenaltyRaisesPhase1) {
  const std::vector<double> rs(20, 0.05);
  RectAnalysis square(rs, RectConfig{100, 100});
  RectAnalysis wide(rs, RectConfig{25, 400});  // same area, 16:1
  const double beta = 4.0;
  EXPECT_NEAR(wide.phase1_volume(beta) / square.phase1_volume(beta),
              wide.aspect_penalty(), 1e-9);
  EXPECT_GT(wide.ratio(beta), square.ratio(beta));
}

TEST(RectAnalysis, TracksSimulationOnRectangularDomain) {
  Rng rng(derive_stream(11, "speeds"));
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 20, rng);
  RectAnalysis analysis(platform.relative_speeds(), RectConfig{50, 200});
  const double beta = analysis.optimal_beta().x;

  auto strategy = make_rect_strategy("DynamicRect2Phases", RectConfig{50, 200},
                                     20, 13, std::exp(-beta));
  const SimResult result = simulate(*strategy, platform);
  const double measured =
      static_cast<double>(result.total_blocks) / analysis.lower_bound();
  EXPECT_NEAR(measured, analysis.ratio(beta), 0.08 * analysis.ratio(beta));
}

TEST(RectAnalysis, RejectsBadInputs) {
  EXPECT_THROW(RectAnalysis({}, RectConfig{10, 10}), std::invalid_argument);
  EXPECT_THROW(RectAnalysis({0.5, 0.4}, RectConfig{10, 10}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
