#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace hetsched {
namespace {

TEST(Platform, BasicAccessors) {
  Platform platform({10.0, 20.0, 30.0});
  EXPECT_EQ(platform.size(), 3u);
  EXPECT_DOUBLE_EQ(platform.speed(0), 10.0);
  EXPECT_DOUBLE_EQ(platform.speed(2), 30.0);
  EXPECT_DOUBLE_EQ(platform.total_speed(), 60.0);
}

TEST(Platform, RelativeSpeedsSumToOne) {
  Platform platform({15.0, 25.0, 60.0});
  const auto rs = platform.relative_speeds();
  EXPECT_NEAR(std::accumulate(rs.begin(), rs.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(rs[0], 0.15, 1e-12);
  EXPECT_NEAR(rs[2], 0.60, 1e-12);
}

TEST(Platform, AlphaMatchesDefinition) {
  Platform platform({10.0, 30.0});
  // alpha_k = sum_{i != k} s_i / s_k
  EXPECT_DOUBLE_EQ(platform.alpha(0), 3.0);
  EXPECT_DOUBLE_EQ(platform.alpha(1), 1.0 / 3.0);
}

TEST(Platform, SingleWorkerAlphaIsZero) {
  Platform platform({42.0});
  EXPECT_DOUBLE_EQ(platform.alpha(0), 0.0);
}

TEST(Platform, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(Platform(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Platform({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Platform({-1.0}), std::invalid_argument);
}

TEST(MakePlatform, DrawsRequestedCount) {
  UniformIntervalSpeeds model(10.0, 100.0);
  Rng rng(1);
  const Platform platform = make_platform(model, 25, rng);
  EXPECT_EQ(platform.size(), 25u);
  for (std::size_t k = 0; k < 25; ++k) {
    EXPECT_GE(platform.speed(k), 10.0);
    EXPECT_LT(platform.speed(k), 100.0);
  }
}

TEST(MakePlatform, DeterministicGivenRngState) {
  UniformIntervalSpeeds model(10.0, 100.0);
  Rng rng_a(9);
  Rng rng_b(9);
  const Platform a = make_platform(model, 10, rng_a);
  const Platform b = make_platform(model, 10, rng_b);
  EXPECT_EQ(a.speeds(), b.speeds());
}

TEST(MakeHomogeneousPlatform, AllSpeedsEqual) {
  const Platform platform = make_homogeneous_platform(7, 50.0);
  EXPECT_EQ(platform.size(), 7u);
  for (std::size_t k = 0; k < 7; ++k) EXPECT_DOUBLE_EQ(platform.speed(k), 50.0);
  const auto rs = platform.relative_speeds();
  for (const double r : rs) EXPECT_NEAR(r, 1.0 / 7.0, 1e-12);
}

}  // namespace
}  // namespace hetsched
