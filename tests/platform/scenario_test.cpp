#include "platform/scenario.hpp"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(Scenario, PaperDefaultIsUniform10To100) {
  const Scenario s = paper_default_scenario();
  EXPECT_EQ(s.name, "default");
  EXPECT_FALSE(s.perturbation.enabled());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = s.speeds->draw(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 100.0);
  }
}

TEST(Scenario, HeterogeneityBoundsSpeeds) {
  const Scenario s = heterogeneity_scenario(40.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = s.speeds->draw(rng);
    EXPECT_GE(v, 60.0);
    EXPECT_LT(v, 140.0);
  }
}

TEST(Scenario, HeterogeneityZeroIsHomogeneous) {
  const Scenario s = heterogeneity_scenario(0.0);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(s.speeds->draw(rng), 100.0);
}

TEST(Scenario, HeterogeneityRejectsOutOfRange) {
  EXPECT_THROW(heterogeneity_scenario(-1.0), std::invalid_argument);
  EXPECT_THROW(heterogeneity_scenario(100.0), std::invalid_argument);
}

struct NamedCase {
  const char* name;
  double lo;
  double hi;        // draw range (inclusive set values allowed)
  double perturb;   // expected perturbation percent
};

class NamedScenarioTest : public ::testing::TestWithParam<NamedCase> {};

TEST_P(NamedScenarioTest, MatchesPaperDefinition) {
  const NamedCase& c = GetParam();
  const Scenario s = named_scenario(c.name);
  EXPECT_EQ(s.name, c.name);
  EXPECT_NEAR(s.perturbation.max_percent(), c.perturb, 1e-12);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double v = s.speeds->draw(rng);
    EXPECT_GE(v, c.lo);
    EXPECT_LE(v, c.hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, NamedScenarioTest,
    ::testing::Values(NamedCase{"unif.1", 80.0, 120.0, 0.0},
                      NamedCase{"unif.2", 50.0, 150.0, 0.0},
                      NamedCase{"set.3", 80.0, 150.0, 0.0},
                      NamedCase{"set.5", 40.0, 200.0, 0.0},
                      NamedCase{"dyn.5", 80.0, 120.0, 5.0},
                      NamedCase{"dyn.20", 80.0, 120.0, 20.0}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (auto& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

TEST(Scenario, Set3DrawsExactlyTheThreeClasses) {
  const Scenario s = named_scenario("set.3");
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double v = s.speeds->draw(rng);
    EXPECT_TRUE(v == 80.0 || v == 100.0 || v == 150.0) << v;
  }
}

TEST(Scenario, UnknownNameThrows) {
  EXPECT_THROW(named_scenario("nope"), std::invalid_argument);
}

TEST(Scenario, Figure8ListIsCompleteAndOrdered) {
  const auto& names = figure8_scenario_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "unif.1");
  EXPECT_EQ(names.back(), "dyn.20");
  for (const auto& name : names) {
    EXPECT_NO_THROW(named_scenario(name)) << name;
  }
}

TEST(Scenario, HomIsHomogeneous) {
  const Scenario s = named_scenario("hom");
  Rng rng(6);
  EXPECT_DOUBLE_EQ(s.speeds->draw(rng), 100.0);
  EXPECT_DOUBLE_EQ(s.speeds->draw(rng), 100.0);
}

}  // namespace
}  // namespace hetsched
