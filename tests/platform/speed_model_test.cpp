#include "platform/speed_model.hpp"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(UniformIntervalSpeeds, DrawsInsideInterval) {
  UniformIntervalSpeeds model(10.0, 100.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double s = model.draw(rng);
    EXPECT_GE(s, 10.0);
    EXPECT_LT(s, 100.0);
  }
}

TEST(UniformIntervalSpeeds, DegenerateIntervalIsConstant) {
  UniformIntervalSpeeds model(42.0, 42.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(model.draw(rng), 42.0);
}

TEST(UniformIntervalSpeeds, RejectsBadBounds) {
  EXPECT_THROW(UniformIntervalSpeeds(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(UniformIntervalSpeeds(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(UniformIntervalSpeeds(10.0, 5.0), std::invalid_argument);
}

TEST(UniformIntervalSpeeds, NameMentionsBounds) {
  EXPECT_EQ(UniformIntervalSpeeds(10, 100).name(), "unif[10,100]");
}

TEST(DiscreteSetSpeeds, DrawsOnlyFromSet) {
  DiscreteSetSpeeds model({80.0, 100.0, 150.0});
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double s = model.draw(rng);
    EXPECT_TRUE(s == 80.0 || s == 100.0 || s == 150.0) << s;
  }
}

TEST(DiscreteSetSpeeds, CoversWholeSet) {
  DiscreteSetSpeeds model({1.0, 2.0, 3.0});
  Rng rng(3);
  bool saw1 = false, saw2 = false, saw3 = false;
  for (int i = 0; i < 200; ++i) {
    const double s = model.draw(rng);
    saw1 |= s == 1.0;
    saw2 |= s == 2.0;
    saw3 |= s == 3.0;
  }
  EXPECT_TRUE(saw1 && saw2 && saw3);
}

TEST(DiscreteSetSpeeds, RejectsEmptyOrNonPositive) {
  EXPECT_THROW(DiscreteSetSpeeds({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSetSpeeds({1.0, 0.0}), std::invalid_argument);
}

TEST(HomogeneousSpeeds, AlwaysSameSpeed) {
  HomogeneousSpeeds model(123.0);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(model.draw(rng), 123.0);
}

TEST(HomogeneousSpeeds, RejectsNonPositive) {
  EXPECT_THROW(HomogeneousSpeeds(0.0), std::invalid_argument);
}

TEST(FixedListSpeeds, ReplaysInOrderAndCycles) {
  FixedListSpeeds model({10.0, 20.0, 30.0});
  Rng rng(5);
  EXPECT_DOUBLE_EQ(model.draw(rng), 10.0);
  EXPECT_DOUBLE_EQ(model.draw(rng), 20.0);
  EXPECT_DOUBLE_EQ(model.draw(rng), 30.0);
  EXPECT_DOUBLE_EQ(model.draw(rng), 10.0);  // wraps
}

TEST(FixedListSpeeds, RejectsEmptyOrNonPositive) {
  EXPECT_THROW(FixedListSpeeds({}), std::invalid_argument);
  EXPECT_THROW(FixedListSpeeds({-5.0}), std::invalid_argument);
}

TEST(PerturbationModel, DisabledByDefault) {
  PerturbationModel model;
  EXPECT_FALSE(model.enabled());
  Rng rng(6);
  EXPECT_DOUBLE_EQ(model.perturb(77.0, 100.0, rng), 77.0);
}

TEST(PerturbationModel, StaysWithinStepBounds) {
  PerturbationModel model(5.0);
  Rng rng(7);
  double speed = 100.0;
  for (int i = 0; i < 1000; ++i) {
    const double next = model.perturb(speed, 100.0, rng);
    EXPECT_GE(next, speed * 0.95 - 1e-9);
    EXPECT_LE(next, speed * 1.05 + 1e-9);
    speed = next;
  }
}

TEST(PerturbationModel, ClampsLongDrift) {
  PerturbationModel model(20.0, 4.0);
  Rng rng(8);
  double speed = 100.0;
  for (int i = 0; i < 100000; ++i) speed = model.perturb(speed, 100.0, rng);
  EXPECT_GE(speed, 25.0 - 1e-9);
  EXPECT_LE(speed, 400.0 + 1e-9);
}

TEST(PerturbationModel, RejectsBadParameters) {
  EXPECT_THROW(PerturbationModel(-1.0), std::invalid_argument);
  EXPECT_THROW(PerturbationModel(100.0), std::invalid_argument);
  EXPECT_THROW(PerturbationModel(5.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
