#include "platform/lower_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "platform/platform.hpp"

namespace hetsched {
namespace {

TEST(LowerBound, OuterHomogeneousClosedForm) {
  // p equal workers: LB = 2 N p sqrt(1/p) = 2 N sqrt(p).
  const std::vector<double> rs(16, 1.0 / 16.0);
  EXPECT_NEAR(outer_lower_bound(100, rs), 2.0 * 100.0 * 4.0, 1e-9);
}

TEST(LowerBound, OuterSingleWorkerIsPerimeterOfWholeSquare) {
  const std::vector<double> rs{1.0};
  EXPECT_NEAR(outer_lower_bound(50, rs), 100.0, 1e-12);
}

TEST(LowerBound, MatmulHomogeneousClosedForm) {
  // p equal workers: LB = 3 N^2 p^(1/3).
  const std::vector<double> rs(8, 1.0 / 8.0);
  EXPECT_NEAR(matmul_lower_bound(10, rs), 3.0 * 100.0 * 2.0, 1e-9);
}

TEST(LowerBound, MatmulSingleWorker) {
  const std::vector<double> rs{1.0};
  EXPECT_NEAR(matmul_lower_bound(10, rs), 300.0, 1e-12);
}

TEST(LowerBound, OuterScalesLinearlyWithN) {
  const std::vector<double> rs{0.25, 0.75};
  EXPECT_NEAR(outer_lower_bound(200, rs), 2.0 * outer_lower_bound(100, rs),
              1e-9);
}

TEST(LowerBound, MatmulScalesQuadraticallyWithN) {
  const std::vector<double> rs{0.25, 0.75};
  EXPECT_NEAR(matmul_lower_bound(200, rs), 4.0 * matmul_lower_bound(100, rs),
              1e-9);
}

TEST(LowerBound, MoreWorkersMeansMoreCommunication) {
  // Splitting work across more workers can only increase the bound.
  const std::vector<double> one{1.0};
  const std::vector<double> four(4, 0.25);
  EXPECT_GT(outer_lower_bound(100, four), outer_lower_bound(100, one));
  EXPECT_GT(matmul_lower_bound(100, four), matmul_lower_bound(100, one));
}

TEST(LowerBound, PowerSumBasics) {
  const std::vector<double> rs{0.5, 0.5};
  EXPECT_NEAR(rel_speed_power_sum(rs, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(rel_speed_power_sum(rs, 0.5), 2.0 * std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(rel_speed_power_sum(rs, 0.0), 2.0, 1e-12);
}

TEST(LowerBound, PowerSumRejectsNonPositive) {
  EXPECT_THROW(rel_speed_power_sum({0.5, 0.0}, 0.5), std::invalid_argument);
}

TEST(LowerBound, HeterogeneousOuterMatchesManualComputation) {
  Platform platform({10.0, 40.0});  // rs = 0.2, 0.8
  const auto rs = platform.relative_speeds();
  const double expect = 2.0 * 100.0 * (std::sqrt(0.2) + std::sqrt(0.8));
  EXPECT_NEAR(outer_lower_bound(100, rs), expect, 1e-9);
}

TEST(LowerBound, HeterogeneousMatmulMatchesManualComputation) {
  Platform platform({10.0, 40.0});
  const auto rs = platform.relative_speeds();
  const double expect =
      3.0 * 100.0 * 100.0 *
      (std::pow(0.2, 2.0 / 3.0) + std::pow(0.8, 2.0 / 3.0));
  EXPECT_NEAR(matmul_lower_bound(100, rs), expect, 1e-6);
}

}  // namespace
}  // namespace hetsched
