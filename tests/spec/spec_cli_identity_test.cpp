// Pins the refactor's core promise: flag-driven invocations that now
// compile through the spec layer produce exactly the configs (and
// byte-identical report JSON) the CLI used to build by hand.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "spec/compile.hpp"
#include "spec/overlay.hpp"
#include "spec/parse.hpp"

namespace hetsched {
namespace {

// Field-wise config equality (ExperimentConfig has no operator==; the
// scenario is compared by name + lifted speed spec).
void expect_config_eq(const ExperimentConfig& a, const ExperimentConfig& b) {
  EXPECT_EQ(a.kernel, b.kernel);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.scenario.name, b.scenario.name);
  EXPECT_EQ(speed_spec_for(a.scenario), speed_spec_for(b.scenario));
  EXPECT_EQ(a.phase2_fraction, b.phase2_fraction);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.reps, b.reps);
  EXPECT_EQ(a.timed, b.timed);
  EXPECT_EQ(a.comm.bandwidth, b.comm.bandwidth);
  EXPECT_EQ(a.comm.latency, b.comm.latency);
  EXPECT_EQ(a.lookahead, b.lookahead);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].time, b.faults[i].time);
    EXPECT_EQ(a.faults[i].worker, b.faults[i].worker);
    EXPECT_EQ(a.faults[i].factor, b.faults[i].factor);
  }
  EXPECT_EQ(a.lanes, b.lanes);
}

ExperimentConfig compile_single(const CliArgs& args,
                                const SpecDefaults& defaults) {
  const ScenarioSpec spec =
      resolve_spec(spec_overlay_from_cli(args), defaults);
  CompiledCampaign compiled = compile_spec(spec);
  EXPECT_EQ(compiled.entries.size(), 1u);
  return compiled.entries.front().config;
}

TEST(SpecCliIdentity, RunDefaultsCompileToTheLegacyConfig) {
  const char* argv[] = {"run"};
  const ExperimentConfig compiled =
      compile_single(CliArgs(1, argv), run_spec_defaults());
  const ExperimentConfig legacy;  // pre-refactor cmd_run defaults, spelled out
  ExperimentConfig expected = legacy;
  expected.strategy = "DynamicOuter2Phases";
  expected.reps = 10;
  expect_config_eq(compiled, expected);
  EXPECT_NE(compiled.config_hash, 0u);
}

TEST(SpecCliIdentity, RunFlagsCompileToTheLegacyConfig) {
  const char* argv[] = {"run",       "--kernel=matmul", "--n=12",
                        "--p=4",     "--scenario=unif.1", "--reps=2",
                        "--seed=7",  "--beta=1.25",     "--timed",
                        "--bandwidth=40", "--latency=0.5", "--lookahead=3",
                        "--faults=1:0:0.5", "--lanes=2"};
  const ExperimentConfig compiled = compile_single(
      CliArgs(static_cast<int>(std::size(argv)), argv), run_spec_defaults());

  // The exact statements legacy cmd_run executed for these flags.
  ExperimentConfig legacy;
  legacy.kernel = Kernel::kMatmul;
  legacy.strategy = "DynamicMatrix2Phases";
  legacy.n = 12;
  legacy.p = 4;
  legacy.scenario = named_scenario("unif.1");
  legacy.reps = 2;
  legacy.seed = 7;
  legacy.phase2_fraction = std::exp(-1.25);
  legacy.timed = true;
  legacy.comm.bandwidth = 40.0;
  legacy.comm.latency = 0.5;
  legacy.lookahead = 3;
  legacy.faults = {WorkerFault{1.0, 0, 0.5}};
  legacy.lanes = 2;
  expect_config_eq(compiled, legacy);
}

TEST(SpecCliIdentity, ExperimentJsonIsByteIdenticalModuloHash) {
  // One small real run, serialized once with the legacy (hash-free)
  // config and once with the spec-compiled config: the only difference
  // may be the config_hash field.
  const char* argv[] = {"run", "--strategy=RandomOuter", "--n=8", "--p=3",
                        "--reps=2", "--scenario=hom"};
  ExperimentConfig compiled = compile_single(
      CliArgs(static_cast<int>(std::size(argv)), argv), run_spec_defaults());

  ExperimentConfig legacy;
  legacy.strategy = "RandomOuter";
  legacy.n = 8;
  legacy.p = 3;
  legacy.reps = 2;
  legacy.scenario = named_scenario("hom");
  expect_config_eq(compiled, legacy);

  const ExperimentResult result = run_experiment(legacy);

  std::ostringstream legacy_json;
  write_experiment_json(legacy_json, legacy, result, /*include_reps=*/false);
  std::ostringstream hashed_json;
  write_experiment_json(hashed_json, compiled, result, /*include_reps=*/false);
  EXPECT_NE(legacy_json.str(), hashed_json.str());
  EXPECT_NE(hashed_json.str().find("\"config_hash\""), std::string::npos);

  // With the stamp removed, the spec-compiled config serializes
  // byte-identically to the hand-built one.
  compiled.config_hash = 0;
  std::ostringstream stripped_json;
  write_experiment_json(stripped_json, compiled, result,
                        /*include_reps=*/false);
  EXPECT_EQ(legacy_json.str(), stripped_json.str());
}

TEST(SpecCliIdentity, CampaignFlagsCompileToTheLegacyEntries) {
  const char* argv[] = {"campaign", "--p=4,8", "--n=16", "--reps=2",
                        "--seed=5"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  const CompiledCampaign compiled = compile_spec(
      resolve_spec(spec_overlay_from_cli(args), batch_spec_defaults()));

  // The exact loop legacy cmd_campaign ran for these flags.
  std::vector<CampaignEntry> legacy;
  for (const std::uint32_t p : {4u, 8u}) {
    for (const std::string& strategy :
         {std::string("RandomOuter"), std::string("DynamicOuter"),
          std::string("DynamicOuter2Phases")}) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = strategy;
      config.n = 16;
      config.p = p;
      config.reps = 2;
      config.seed = 5;
      config.scenario = named_scenario("default");
      legacy.push_back(
          CampaignEntry{strategy + ".p" + std::to_string(p), config});
    }
  }
  EXPECT_EQ(compiled.name, "cli");
  ASSERT_EQ(compiled.entries.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(compiled.entries[i].label, legacy[i].label);
    expect_config_eq(compiled.entries[i].config, legacy[i].config);
  }
}

TEST(SpecCliIdentity, SpecFileAndFlagsCompileIdentically) {
  // The same campaign expressed as flags and as a .hspec document must
  // produce identical entries, hashes included — the in-process version
  // of CI's spec-vs-flag bit-identity check.
  const char* argv[] = {"campaign", "--strategies=RandomOuter,DynamicOuter",
                        "--p=2,3",  "--n=8",
                        "--reps=2", "--scenario=hom"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  const CompiledCampaign from_flags = compile_spec(
      resolve_spec(spec_overlay_from_cli(args), batch_spec_defaults()));

  const CompiledCampaign from_text = compile_spec(resolve_spec(
      parse_spec("[platform]\n"
                 "scenario = hom\n"
                 "[experiment]\n"
                 "reps = 2\n"
                 "[grid]\n"
                 "strategy = RandomOuter, DynamicOuter\n"
                 "n = 8\n"
                 "p = 2, 3\n"),
      batch_spec_defaults()));

  ASSERT_EQ(from_flags.entries.size(), from_text.entries.size());
  for (std::size_t i = 0; i < from_flags.entries.size(); ++i) {
    EXPECT_EQ(from_flags.entries[i].label, from_text.entries[i].label);
    expect_config_eq(from_flags.entries[i].config, from_text.entries[i].config);
    EXPECT_EQ(from_flags.entries[i].config.config_hash,
              from_text.entries[i].config.config_hash);
  }

  // And the runs themselves are bit-identical (configs fully determine
  // results; both tiny).
  Campaign a(from_flags.name), b(from_text.name);
  for (const auto& e : from_flags.entries) a.add(e.label, e.config);
  for (const auto& e : from_text.entries) b.add(e.label, e.config);
  const auto ra = a.run(1);
  const auto rb = b.run(1);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].result.normalized.mean, rb[i].result.normalized.mean);
    EXPECT_EQ(ra[i].result.makespan.mean, rb[i].result.makespan.mean);
  }
}

}  // namespace
}  // namespace hetsched
