// Parser goldens: the .hspec front-end must produce exactly the right
// partial spec, and every diagnostic must carry the message, line and
// column the docs promise (these are golden — error text is API).
#include "spec/parse.hpp"

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(SpecParse, FullDocumentEveryKey) {
  const ScenarioSpec spec = parse_spec(
      "# a comment line\n"
      "[campaign]\n"
      "name = fig05   # trailing comment\n"
      "\n"
      "[experiment]\n"
      "kernel = matmul\n"
      "reps = 7\n"
      "seed = 123\n"
      "lanes = 2\n"
      "[platform]\n"
      "scenario = unif.2\n"
      "[engine]\n"
      "timed = true\n"
      "bandwidth = 55.5\n"
      "latency = 0.25\n"
      "lookahead = 3\n"
      "[grid]\n"
      "strategy = RandomMatrix, DynamicMatrix\n"
      "n = 10, 20\n"
      "p = 4\n"
      "phase2 = 0.5, 0.25\n"
      "[faults]\n"
      "fault = 1.5:0:0\n"
      "fault = 2:1:0.5\n");
  EXPECT_EQ(spec.name, "fig05");
  EXPECT_EQ(spec.kernel, Kernel::kMatmul);
  EXPECT_EQ(spec.reps, 7u);
  EXPECT_EQ(spec.seed, 123u);
  EXPECT_EQ(spec.lanes, 2u);
  ASSERT_TRUE(spec.platform.has_value());
  EXPECT_EQ(spec.platform->kind, SpeedSpec::Kind::kPreset);
  EXPECT_EQ(spec.platform->preset, "unif.2");
  EXPECT_EQ(spec.timed, true);
  EXPECT_EQ(spec.bandwidth, 55.5);
  EXPECT_EQ(spec.latency, 0.25);
  EXPECT_EQ(spec.lookahead, 3u);
  EXPECT_EQ(spec.strategies,
            (std::vector<std::string>{"RandomMatrix", "DynamicMatrix"}));
  EXPECT_EQ(spec.ns, (std::vector<std::uint32_t>{10, 20}));
  EXPECT_EQ(spec.ps, (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(spec.phase2s, (std::vector<double>{0.5, 0.25}));
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_EQ(spec.faults[0], (FaultSpec{1.5, 0, 0.0}));
  EXPECT_EQ(spec.faults[1], (FaultSpec{2.0, 1, 0.5}));
}

TEST(SpecParse, EmptyTextIsEmptySpec) {
  EXPECT_EQ(parse_spec(""), ScenarioSpec{});
  EXPECT_EQ(parse_spec("# only comments\n\n"), ScenarioSpec{});
}

TEST(SpecParse, InlineSpeedKinds) {
  const auto platform = [](std::string_view body) {
    return *parse_spec(std::string("[platform]\n") + std::string(body))
                .platform;
  };
  SpeedSpec uniform;
  uniform.kind = SpeedSpec::Kind::kUniform;
  uniform.lo = 10;
  uniform.hi = 100;
  EXPECT_EQ(platform("speeds = uniform 10 100\n"), uniform);

  SpeedSpec set;
  set.kind = SpeedSpec::Kind::kSet;
  set.values = {80, 100, 150};
  EXPECT_EQ(platform("speeds = set 80 100 150\n"), set);

  SpeedSpec list;
  list.kind = SpeedSpec::Kind::kList;
  list.values = {5, 6};
  list.perturb_percent = 12.5;
  EXPECT_EQ(platform("speeds = list 5 6\nperturb = 12.5\n"), list);

  SpeedSpec twoclass;
  twoclass.kind = SpeedSpec::Kind::kTwoClass;
  twoclass.slow = 10;
  twoclass.fast = 100;
  twoclass.fast_fraction = 0.25;
  EXPECT_EQ(platform("speeds = twoclass 10 100 0.25\n"), twoclass);

  SpeedSpec hom;
  hom.kind = SpeedSpec::Kind::kHomogeneous;
  hom.speed = 42;
  EXPECT_EQ(platform("speeds = hom 42\n"), hom);
}

TEST(SpecParse, BetaConvertsLikeTheLegacyFlag) {
  const ScenarioSpec spec = parse_spec("[grid]\nbeta = 4.2, 0\n");
  ASSERT_EQ(spec.phase2s.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.phase2s[0], std::exp(-4.2));
  EXPECT_DOUBLE_EQ(spec.phase2s[1], 1.0);
}

// Diagnostics: exact message, line and column.
struct ErrorCase {
  const char* text;
  const char* what;
  std::size_t line;
  std::size_t column;
};

class SpecParseError : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(SpecParseError, MessageLineColumn) {
  const ErrorCase& c = GetParam();
  try {
    parse_spec(c.text);
    FAIL() << "expected SpecError for: " << c.text;
  } catch (const SpecError& e) {
    EXPECT_STREQ(e.what(), c.what) << "input: " << c.text;
    EXPECT_EQ(e.line(), c.line) << "input: " << c.text;
    EXPECT_EQ(e.column(), c.column) << "input: " << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Goldens, SpecParseError,
    ::testing::Values(
        ErrorCase{"[nope]\n",
                  "line 1, col 1: unknown section '[nope]' (sections: "
                  "campaign, experiment, platform, engine, grid, faults)",
                  1, 1},
        ErrorCase{"[campaign\n",
                  "line 1, col 1: unterminated section header (missing ']')",
                  1, 1},
        ErrorCase{"kernel = outer\n",
                  "line 1, col 1: key 'kernel' appears before any [section] "
                  "header",
                  1, 1},
        ErrorCase{"[experiment]\n  what\n",
                  "line 2, col 3: expected 'key = value' or '[section]'", 2,
                  3},
        ErrorCase{"[experiment]\nkernel =\n",
                  "line 2, col 9: [experiment] kernel: expected a value "
                  "after '='",
                  2, 9},
        ErrorCase{"[experiment]\nkernel = cuda\n",
                  "line 2, col 10: [experiment] kernel: expected outer or "
                  "matmul, got 'cuda'",
                  2, 10},
        ErrorCase{"[experiment]\nreps = 5\nreps = 6\n",
                  "line 3, col 1: duplicate key: [experiment] reps", 3, 1},
        ErrorCase{"[experiment]\ncolor = red\n",
                  "line 2, col 1: [experiment] color: unknown key "
                  "(experiment keys: kernel, reps, seed, lanes)",
                  2, 1},
        ErrorCase{"[grid]\nn = 10, x, 30\n",
                  "line 2, col 9: [grid] n: expected a positive integer, "
                  "got 'x'",
                  2, 9},
        ErrorCase{"[grid]\nbeta = 1\nphase2 = 0.5\n",
                  "line 3, col 1: [grid] beta and phase2 are mutually "
                  "exclusive",
                  3, 1},
        ErrorCase{"[platform]\nscenario = default\nspeeds = hom 5\n",
                  "line 3, col 1: [platform] scenario and speeds are "
                  "mutually exclusive",
                  3, 1},
        ErrorCase{"[platform]\nspeeds = warp 1 2\n",
                  "line 2, col 10: [platform] speeds: unknown kind 'warp' "
                  "(kinds: uniform, set, list, twoclass, hom)",
                  2, 10},
        ErrorCase{"[platform]\nspeeds = uniform 10\n",
                  "line 2, col 10: [platform] speeds: uniform takes exactly "
                  "2 values (lo hi)",
                  2, 10},
        ErrorCase{"[platform]\nspeeds = hom fast\n",
                  "line 2, col 14: [platform] speeds: expected a number, "
                  "got 'fast'",
                  2, 14},
        // The satellite fix: fault fields are named, ranges are checked,
        // and trailing garbage like "0.5x" is rejected.
        ErrorCase{"[faults]\nfault = 1:2\n",
                  "line 2, col 9: [faults] fault: expected "
                  "time:worker:factor, got '1:2'",
                  2, 9},
        ErrorCase{"[faults]\nfault = -1:2:0.5\n",
                  "line 2, col 9: [faults] fault.time: expected a number "
                  ">= 0, got '-1'",
                  2, 9},
        ErrorCase{"[faults]\nfault = 1:two:0.5\n",
                  "line 2, col 9: [faults] fault.worker: expected a worker "
                  "index, got 'two'",
                  2, 9},
        ErrorCase{"[faults]\nfault = 1:2:0.5x\n",
                  "line 2, col 9: [faults] fault.factor: expected 0 (crash) "
                  "or a factor in (0, 1), got '0.5x'",
                  2, 9},
        ErrorCase{"[faults]\nfault = 1:2:1.5\n",
                  "line 2, col 9: [faults] fault.factor: expected 0 (crash) "
                  "or a factor in (0, 1), got '1.5'",
                  2, 9}));

TEST(SpecParse, FaultListNamesTheItem) {
  try {
    parse_fault_list("1:0:0.5,2:1:-3");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_STREQ(e.what(),
                 "faults[1].factor: expected 0 (crash) or a factor in "
                 "(0, 1), got '-3'");
  }
}

TEST(SpecParse, FileErrorsArePrefixedWithThePath) {
  EXPECT_THROW(parse_spec_file("/nonexistent/x.hspec"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/bad.hspec";
  {
    std::ofstream out(path);
    out << "[grid]\nn = zero\n";
  }
  try {
    parse_spec_file(path);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()),
              path + ": line 2, col 5: [grid] n: expected a positive "
              "integer, got 'zero'");
  }
}

}  // namespace
}  // namespace hetsched
