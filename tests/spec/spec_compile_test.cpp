// compile_spec: defaults, merge precedence, grid expansion order and
// labels, and the per-entry scenario freshness the campaign runner
// depends on.
#include "spec/compile.hpp"

#include <cmath>
#include <initializer_list>
#include <iterator>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "spec/overlay.hpp"

namespace hetsched {
namespace {

ScenarioSpec resolved(ScenarioSpec spec, const SpecDefaults& defaults) {
  return resolve_spec(std::move(spec), defaults);
}

TEST(SpecCompile, RunDefaultsMatchLegacyCmdRun) {
  const CompiledCampaign compiled =
      compile_spec(resolved(ScenarioSpec{}, run_spec_defaults()));
  ASSERT_EQ(compiled.entries.size(), 1u);
  const ExperimentConfig& c = compiled.entries.front().config;
  EXPECT_EQ(c.kernel, Kernel::kOuter);
  EXPECT_EQ(c.strategy, "DynamicOuter2Phases");
  EXPECT_EQ(c.n, 100u);
  EXPECT_EQ(c.p, 20u);
  EXPECT_EQ(c.scenario.name, "default");
  EXPECT_FALSE(c.phase2_fraction.has_value());
  EXPECT_EQ(c.seed, 42u);
  EXPECT_EQ(c.reps, 10u);
  EXPECT_FALSE(c.timed);
  EXPECT_EQ(c.lanes, 1u);
  EXPECT_TRUE(c.faults.empty());
  EXPECT_NE(c.config_hash, 0u);
  EXPECT_EQ(compiled.entries.front().label, "DynamicOuter2Phases.p20");
}

TEST(SpecCompile, BatchDefaultsMatchLegacyCmdCampaign) {
  const CompiledCampaign compiled =
      compile_spec(resolved(ScenarioSpec{}, batch_spec_defaults()));
  EXPECT_EQ(compiled.name, "cli");
  // Legacy expansion: for p { for strategy } with the paper trio.
  const std::vector<std::string> expected{
      "RandomOuter.p10",  "DynamicOuter.p10",  "DynamicOuter2Phases.p10",
      "RandomOuter.p50",  "DynamicOuter.p50",  "DynamicOuter2Phases.p50",
      "RandomOuter.p100", "DynamicOuter.p100", "DynamicOuter2Phases.p100"};
  ASSERT_EQ(compiled.entries.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(compiled.entries[i].label, expected[i]);
    EXPECT_EQ(compiled.entries[i].config.reps, 5u);
  }
}

TEST(SpecCompile, MatmulDefaultsFollowTheKernel) {
  ScenarioSpec spec;
  spec.kernel = Kernel::kMatmul;
  const CompiledCampaign compiled =
      compile_spec(resolved(std::move(spec), run_spec_defaults()));
  ASSERT_EQ(compiled.entries.size(), 1u);
  EXPECT_EQ(compiled.entries.front().config.strategy, "DynamicMatrix2Phases");
  EXPECT_EQ(compiled.entries.front().config.n, 40u);
}

TEST(SpecCompile, WideGridExpansionOrderAndLabels) {
  ScenarioSpec spec;
  spec.strategies = {"RandomOuter", "DynamicOuter"};
  spec.ns = {50, 100};
  spec.ps = {4, 8};
  spec.phase2s = {0.5, 0.25};
  const CompiledCampaign compiled =
      compile_spec(resolved(std::move(spec), batch_spec_defaults()));
  // n (outer) -> p -> strategy -> phase2; multi-valued extra axes are
  // tagged onto the label.
  ASSERT_EQ(compiled.entries.size(), 16u);
  EXPECT_EQ(compiled.entries[0].label, "RandomOuter.p4.n50.ph0.5");
  EXPECT_EQ(compiled.entries[1].label, "RandomOuter.p4.n50.ph0.25");
  EXPECT_EQ(compiled.entries[2].label, "DynamicOuter.p4.n50.ph0.5");
  EXPECT_EQ(compiled.entries[15].label, "DynamicOuter.p8.n100.ph0.25");
  EXPECT_EQ(compiled.entries[0].config.n, 50u);
  EXPECT_EQ(compiled.entries[0].config.p, 4u);
  EXPECT_EQ(compiled.entries[0].config.phase2_fraction, 0.5);
  EXPECT_EQ(compiled.entries[15].config.n, 100u);
  EXPECT_EQ(compiled.entries[15].config.p, 8u);
  EXPECT_EQ(compiled.entries[15].config.phase2_fraction, 0.25);
  // Distinct grid points hash differently.
  EXPECT_NE(compiled.entries[0].config.config_hash,
            compiled.entries[15].config.config_hash);
}

TEST(SpecCompile, EntriesGetFreshScenarioInstances) {
  ScenarioSpec spec;
  SpeedSpec list;
  list.kind = SpeedSpec::Kind::kList;
  list.values = {10.0, 20.0};
  spec.platform = list;
  spec.ps = {2, 4};
  spec.strategies = {"DynamicOuter"};
  const CompiledCampaign compiled =
      compile_spec(resolved(std::move(spec), batch_spec_defaults()));
  ASSERT_EQ(compiled.entries.size(), 2u);
  // FixedListSpeeds carries a mutable replay cursor: shared instances
  // would interleave their draws across entries.
  EXPECT_NE(compiled.entries[0].config.scenario.speeds.get(),
            compiled.entries[1].config.scenario.speeds.get());
  Rng rng(1);
  EXPECT_EQ(compiled.entries[0].config.scenario.speeds->draw(rng), 10.0);
  EXPECT_EQ(compiled.entries[1].config.scenario.speeds->draw(rng), 10.0);
}

TEST(SpecCompile, CompileValidates) {
  ScenarioSpec spec;
  spec.strategies = {"NoSuchStrategy"};
  EXPECT_THROW(compile_spec(resolved(std::move(spec), batch_spec_defaults())),
               SpecError);
  // Unresolved specs are rejected outright.
  EXPECT_THROW(compile_spec(ScenarioSpec{}), SpecError);
}

TEST(SpecCompile, MergePrecedence) {
  ScenarioSpec base;
  base.name = "base";
  base.ps = {10};
  base.seed = 7;
  ScenarioSpec overlay;
  overlay.ps = {20};
  overlay.reps = 3;
  const ScenarioSpec merged = merge_specs(base, overlay);
  EXPECT_EQ(merged.name, "base");        // untouched by the overlay
  EXPECT_EQ(merged.ps, (std::vector<std::uint32_t>{20}));  // overlay wins
  EXPECT_EQ(merged.seed, 7u);
  EXPECT_EQ(merged.reps, 3u);
}

// The CLI overlay: only flags that are present produce set fields, and
// the values land where the legacy flag parsing put them.
TEST(SpecCompile, CliOverlayMapsFlags) {
  const char* argv[] = {"prog",
                        "--kernel=matmul",
                        "--strategy=RandomMatrix",
                        "--n=30",
                        "--p=5,10",
                        "--beta=1.5",
                        "--scenario=set.3",
                        "--reps=2",
                        "--seed=99",
                        "--timed",
                        "--bandwidth=50",
                        "--latency=0.5",
                        "--lookahead=6",
                        "--lanes=2",
                        "--faults=1:0:0.5",
                        "--name=trial"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  const ScenarioSpec spec = spec_overlay_from_cli(args);
  EXPECT_EQ(spec.name, "trial");
  EXPECT_EQ(spec.kernel, Kernel::kMatmul);
  EXPECT_EQ(spec.strategies, (std::vector<std::string>{"RandomMatrix"}));
  EXPECT_EQ(spec.ns, (std::vector<std::uint32_t>{30}));
  EXPECT_EQ(spec.ps, (std::vector<std::uint32_t>{5, 10}));
  ASSERT_EQ(spec.phase2s.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.phase2s[0], std::exp(-1.5));
  ASSERT_TRUE(spec.platform.has_value());
  EXPECT_EQ(spec.platform->preset, "set.3");
  EXPECT_EQ(spec.reps, 2u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.timed, true);
  EXPECT_EQ(spec.bandwidth, 50.0);
  EXPECT_EQ(spec.latency, 0.5);
  EXPECT_EQ(spec.lookahead, 6u);
  EXPECT_EQ(spec.lanes, 2u);
  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_EQ(spec.faults[0], (FaultSpec{1.0, 0, 0.5}));
}

TEST(SpecCompile, CliOverlayEmptyWhenNoFlags) {
  const char* argv[] = {"prog", "--json", "--profile"};
  const CliArgs args(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(spec_overlay_from_cli(args), ScenarioSpec{});
}

TEST(SpecCompile, CliOverlayRejectsBadValues) {
  const auto reject = [](std::initializer_list<const char*> flags) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), flags.begin(), flags.end());
    const CliArgs args(static_cast<int>(argv.size()), argv.data());
    EXPECT_THROW(spec_overlay_from_cli(args), SpecError);
  };
  reject({"--n=ten"});
  reject({"--p="});
  reject({"--beta=-1"});
  reject({"--beta=1", "--phase2=0.5"});
  reject({"--strategy=A", "--strategies=A,B"});
  reject({"--seed=-3"});
  reject({"--faults=1:2:0.5x"});
}

}  // namespace
}  // namespace hetsched
