// config_hash stability goldens and semantics.
//
// The hex goldens pin the canonical text layout AND the FNV-1a 64
// parameters byte-for-byte: the hash is the planned result cache's key
// (ROADMAP item 1), so an accidental change here would silently
// invalidate every cached result. Update a golden only for an
// intentional, documented format bump. The golden configs avoid
// exp()-derived values so the expected bytes cannot depend on libm.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "spec/spec.hpp"

namespace hetsched {
namespace {

TEST(SpecHash, Fnv1a64KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(SpecHash, Hex16IsFixedWidthLowercase) {
  EXPECT_EQ(JsonWriter::hex16(0), "0000000000000000");
  EXPECT_EQ(JsonWriter::hex16(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(JsonWriter::hex16(0xffffffffffffffffull), "ffffffffffffffff");
}

TEST(SpecHash, StabilityGoldens) {
  const ExperimentConfig defaults;  // DynamicOuter, n=100, p=20, default
  EXPECT_EQ(JsonWriter::hex16(config_hash(defaults)), "c54ef24624231a29");

  ExperimentConfig timed = defaults;
  timed.kernel = Kernel::kMatmul;
  timed.strategy = "DynamicMatrix2Phases";
  timed.n = 40;
  timed.phase2_fraction = 0.5;  // exact double: no libm in the bytes
  timed.timed = true;
  timed.comm.bandwidth = 50.0;
  timed.comm.latency = 0.25;
  timed.lookahead = 2;
  timed.faults = {WorkerFault{1.5, 0, 0.0}, WorkerFault{3.0, 4, 0.5}};
  EXPECT_EQ(JsonWriter::hex16(config_hash(timed)), "1b552cb3346c8c1a");

  ExperimentConfig inline_platform = defaults;
  inline_platform.scenario =
      Scenario{"twoclass(10,100,0.25)",
               std::make_shared<TwoClassSpeeds>(10.0, 100.0, 0.25),
               PerturbationModel{}};
  EXPECT_EQ(JsonWriter::hex16(config_hash(inline_platform)),
            "aef2d4a702f8d831");
}

TEST(SpecHash, NeutralFieldsDoNotChangeTheHash) {
  const ExperimentConfig base;
  const std::uint64_t h = config_hash(base);
  // The seed pairs WITH the hash as the cache key; it is not inside it.
  ExperimentConfig seeded = base;
  seeded.seed = 12345;
  EXPECT_EQ(config_hash(seeded), h);
  // Lane teams and rep parallelism never change results (pinned by the
  // lane identity tests), so they are hash-neutral too.
  ExperimentConfig laned = base;
  laned.lanes = 8;
  laned.parallelism = 4;
  EXPECT_EQ(config_hash(laned), h);
  // Telemetry is not configuration.
  ExperimentConfig profiled = base;
  profiled.profile = true;
  EXPECT_EQ(config_hash(profiled), h);
  // An untimed config hashes independently of inert comm knobs.
  ExperimentConfig inert = base;
  inert.comm.bandwidth = 1.0;
  inert.lookahead = 9;
  EXPECT_EQ(config_hash(inert), h);
}

TEST(SpecHash, EveryResultDeterminingFieldIsSensitive) {
  const ExperimentConfig base;
  const std::uint64_t h = config_hash(base);
  const auto differs = [&](const auto& mutate) {
    ExperimentConfig c = base;
    mutate(c);
    EXPECT_NE(config_hash(c), h);
  };
  differs([](ExperimentConfig& c) { c.kernel = Kernel::kMatmul; });
  differs([](ExperimentConfig& c) { c.strategy = "RandomOuter"; });
  differs([](ExperimentConfig& c) { c.n = 101; });
  differs([](ExperimentConfig& c) { c.p = 21; });
  differs([](ExperimentConfig& c) { c.scenario = named_scenario("unif.1"); });
  differs([](ExperimentConfig& c) { c.phase2_fraction = 0.5; });
  differs([](ExperimentConfig& c) { c.reps = 11; });
  differs([](ExperimentConfig& c) { c.timed = true; });
  differs([](ExperimentConfig& c) {
    c.timed = true;
    c.comm.bandwidth = 10.0;
  });
  differs([](ExperimentConfig& c) {
    c.faults = {WorkerFault{1.0, 0, 0.5}};
  });
}

TEST(SpecHash, SpecForConfigRoundTripsThroughCompile) {
  // The lifted spec of a config is resolved, valid, and hashes to the
  // config's own hash (idempotence: hashing is lift -> canonical).
  ExperimentConfig config;
  config.strategy = "RandomOuter";
  config.p = 7;
  const ScenarioSpec lifted = spec_for_config(config);
  validate_spec(lifted);
  EXPECT_EQ(fnv1a64(canonical_text(lifted)), config_hash(config));
}

}  // namespace
}  // namespace hetsched
