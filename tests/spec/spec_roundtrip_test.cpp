// The canonical-form round-trip invariant:
//
//   resolve_spec(parse_spec(canonical_text(s)), d) == s
//
// for every resolved spec s and ANY defaults d (a canonical text pins
// every field, so the defaults never matter). Exercised over the full
// preset set x engine x faults x grid shapes, plus every inline
// platform kind with awkward doubles.
#include <gtest/gtest.h>

#include "spec/parse.hpp"
#include "spec/spec.hpp"

namespace hetsched {
namespace {

ScenarioSpec base_resolved() {
  return resolve_spec(ScenarioSpec{}, batch_spec_defaults());
}

void expect_roundtrip(const ScenarioSpec& resolved) {
  const std::string text = canonical_text(resolved);
  // Through either entry point's defaults: canonical text is complete.
  EXPECT_EQ(resolve_spec(parse_spec(text), batch_spec_defaults()), resolved)
      << text;
  EXPECT_EQ(resolve_spec(parse_spec(text), run_spec_defaults()), resolved)
      << text;
  // Canonicalization is idempotent.
  EXPECT_EQ(canonical_text(resolve_spec(parse_spec(text), run_spec_defaults())),
            text);
}

TEST(SpecRoundtrip, DefaultsResolveAndRoundtrip) {
  const ScenarioSpec resolved = base_resolved();
  validate_spec(resolved);
  expect_roundtrip(resolved);
}

TEST(SpecRoundtrip, EveryPresetTimedFaultsGrid) {
  const std::vector<std::string> presets{"default", "hom",   "unif.1",
                                         "unif.2",  "set.3", "set.5",
                                         "dyn.5",   "dyn.20"};
  for (const std::string& preset : presets) {
    for (const bool timed : {false, true}) {
      for (const bool with_faults : {false, true}) {
        for (const bool wide_grid : {false, true}) {
          ScenarioSpec s = base_resolved();
          s.platform->preset = preset;
          s.timed = timed;
          if (timed) {
            s.bandwidth = 37.5;
            s.latency = 0.125;
            s.lookahead = 2;
          }
          if (with_faults) {
            s.faults = {FaultSpec{0.0, 0, 0.0}, FaultSpec{2.5, 3, 0.5}};
          }
          if (wide_grid) {
            s.ns = {50, 100};
            s.ps = {10, 20};
            s.phase2s = {0.25, 1.0};
            s.strategies = {"RandomOuter", "DynamicOuter"};
          }
          validate_spec(s);
          expect_roundtrip(s);
        }
      }
    }
  }
}

TEST(SpecRoundtrip, InlinePlatformsWithAwkwardDoubles) {
  // Values a %g-style printer would mangle; to_chars must carry them
  // through the text form exactly.
  const double awkward = 0.1 + 0.2;  // 0.30000000000000004
  std::vector<SpeedSpec> platforms;

  SpeedSpec uniform;
  uniform.kind = SpeedSpec::Kind::kUniform;
  uniform.lo = awkward;
  uniform.hi = 1e17;
  platforms.push_back(uniform);

  SpeedSpec set;
  set.kind = SpeedSpec::Kind::kSet;
  set.values = {awkward, 1.0 / 3.0, 100.0};
  set.perturb_percent = 5.0;
  platforms.push_back(set);

  SpeedSpec list;
  list.kind = SpeedSpec::Kind::kList;
  list.values = {10.0, 40.0, 25.0, 25.0};
  platforms.push_back(list);

  SpeedSpec twoclass;
  twoclass.kind = SpeedSpec::Kind::kTwoClass;
  twoclass.slow = 10.0;
  twoclass.fast = 100.0;
  twoclass.fast_fraction = 2.0 / 3.0;
  platforms.push_back(twoclass);

  SpeedSpec hom;
  hom.kind = SpeedSpec::Kind::kHomogeneous;
  hom.speed = 99.9;
  platforms.push_back(hom);

  for (const SpeedSpec& platform : platforms) {
    ScenarioSpec s = base_resolved();
    s.platform = platform;
    s.phase2s = {awkward};
    validate_spec(s);
    expect_roundtrip(s);
  }
}

TEST(SpecRoundtrip, NonDefaultScalars) {
  ScenarioSpec s = base_resolved();
  s.name = "weird-name.v2+x_y";
  s.kernel = Kernel::kMatmul;
  s.strategies = {"DynamicMatrix2Phases"};
  s.ns = {17};
  s.ps = {3};
  s.reps = 1;
  s.seed = 18446744073709551615ull;  // max u64 survives the text form
  s.lanes = 8;
  validate_spec(s);
  expect_roundtrip(s);
}

TEST(SpecRoundtrip, ResolveRejectsInertCommKnobs) {
  ScenarioSpec s;
  s.bandwidth = 10.0;
  EXPECT_THROW(resolve_spec(s, batch_spec_defaults()), SpecError);
  s = ScenarioSpec{};
  s.latency = 1.0;
  EXPECT_THROW(resolve_spec(s, batch_spec_defaults()), SpecError);
  s = ScenarioSpec{};
  s.lookahead = 2;
  EXPECT_THROW(resolve_spec(s, batch_spec_defaults()), SpecError);
  // With the timed engine they are legal and preserved.
  s = ScenarioSpec{};
  s.timed = true;
  s.bandwidth = 10.0;
  const ScenarioSpec resolved = resolve_spec(s, batch_spec_defaults());
  EXPECT_EQ(resolved.bandwidth, 10.0);
  validate_spec(resolved);
  expect_roundtrip(resolved);
}

TEST(SpecRoundtrip, ValidationCatchesBadSpecs) {
  const auto invalid = [](const auto& mutate) {
    ScenarioSpec s = base_resolved();
    mutate(s);
    EXPECT_THROW(validate_spec(s), SpecError);
  };
  invalid([](ScenarioSpec& s) { s.name = "has spaces"; });
  invalid([](ScenarioSpec& s) { s.strategies = {"NoSuchStrategy"}; });
  invalid([](ScenarioSpec& s) { s.strategies = {"DynamicMatrix"}; });  // kernel mismatch
  invalid([](ScenarioSpec& s) { s.ns = {0}; });
  invalid([](ScenarioSpec& s) { s.ps = {10, 10}; });
  invalid([](ScenarioSpec& s) { s.phase2s = {1.5}; });
  invalid([](ScenarioSpec& s) { s.phase2s = {0.0}; });
  invalid([](ScenarioSpec& s) { s.reps = 0; });
  invalid([](ScenarioSpec& s) { s.platform->preset = "marsrover"; });
  invalid([](ScenarioSpec& s) { s.platform->perturb_percent = 5.0; });
  invalid([](ScenarioSpec& s) {
    s.timed = true;
    s.bandwidth = 0.0;
  });
  invalid([](ScenarioSpec& s) { s.faults = {FaultSpec{-1.0, 0, 0.0}}; });
  invalid([](ScenarioSpec& s) { s.faults = {FaultSpec{1.0, 0, 1.5}}; });
  // Fault targets a worker >= the smallest grid p.
  invalid([](ScenarioSpec& s) { s.faults = {FaultSpec{1.0, 10, 0.0}}; });
}

}  // namespace
}  // namespace hetsched
