// Bit-identity of the intra-rep lane team: every observable of an
// experiment — per-rep sim stats, normalized summaries, the exact task
// and block enumeration order of every request — must be identical for
// any --lanes value, across strategies, engines, rep parallelism and
// crash scripts. This is the contract that lets the lane count be a
// pure performance knob (and lets the strategies gate the parallel
// path on runtime state like the granted lane count).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "matmul/dynamic_matrix.hpp"
#include "outer/dynamic_outer.hpp"
#include "runtime/thread_pool.hpp"

namespace hetsched {
namespace {

// Lane teams size themselves against the process parallelism budget;
// on a small CI box the default budget may not cover multi-lane teams
// at all. Tests that must exercise the parallel path raise the cap
// (restored on scope exit) so lanes are actually granted.
struct BudgetOverride {
  explicit BudgetOverride(std::uint32_t capacity) {
    set_parallel_budget_capacity(capacity);
  }
  ~BudgetOverride() { set_parallel_budget_capacity(0); }
};

void expect_same_result(const ExperimentResult& a, const ExperimentResult& b) {
  // Exact floating-point equality on purpose: the contract is
  // bit-identical, not approximately equal.
  EXPECT_EQ(a.normalized.mean, b.normalized.mean);
  EXPECT_EQ(a.normalized.stddev, b.normalized.stddev);
  EXPECT_EQ(a.makespan.mean, b.makespan.mean);
  EXPECT_EQ(a.finish_spread.mean, b.finish_spread.mean);
  ASSERT_EQ(a.reps.size(), b.reps.size());
  for (std::size_t r = 0; r < a.reps.size(); ++r) {
    const SimResult& sa = a.reps[r].sim;
    const SimResult& sb = b.reps[r].sim;
    EXPECT_EQ(sa.makespan, sb.makespan) << "rep " << r;
    EXPECT_EQ(sa.total_blocks, sb.total_blocks) << "rep " << r;
    EXPECT_EQ(sa.total_tasks_done, sb.total_tasks_done) << "rep " << r;
    EXPECT_EQ(sa.requeued_tasks, sb.requeued_tasks) << "rep " << r;
    ASSERT_EQ(sa.workers.size(), sb.workers.size());
    for (std::size_t w = 0; w < sa.workers.size(); ++w) {
      EXPECT_EQ(sa.workers[w].tasks_done, sb.workers[w].tasks_done)
          << "rep " << r << " worker " << w;
      EXPECT_EQ(sa.workers[w].blocks_received, sb.workers[w].blocks_received)
          << "rep " << r << " worker " << w;
      EXPECT_EQ(sa.workers[w].busy_time, sb.workers[w].busy_time)
          << "rep " << r << " worker " << w;
      EXPECT_EQ(sa.workers[w].finish_time, sb.workers[w].finish_time)
          << "rep " << r << " worker " << w;
    }
  }
}

TEST(LaneIdentity, ExperimentsAreBitIdenticalForAnyLaneCount) {
  const BudgetOverride cap(16);
  struct Case {
    Kernel kernel;
    const char* strategy;
    std::uint32_t n;
  };
  const Case cases[] = {
      {Kernel::kOuter, "DynamicOuter", 48},
      {Kernel::kOuter, "DynamicOuter2Phases", 48},
      {Kernel::kMatmul, "DynamicMatrix", 12},
      {Kernel::kMatmul, "DynamicMatrix2Phases", 12},
  };
  for (const Case& c : cases) {
    for (const bool timed : {false, true}) {
      for (const std::uint32_t parallelism : {1u, 4u}) {
        SCOPED_TRACE(testing::Message()
                     << c.strategy << (timed ? " timed" : " flat")
                     << " parallelism=" << parallelism);
        ExperimentConfig config;
        config.kernel = c.kernel;
        config.strategy = c.strategy;
        config.n = c.n;
        config.p = 5;
        config.reps = 4;
        config.seed = 2024;
        config.timed = timed;
        config.parallelism = parallelism;
        config.lanes = 1;
        const ExperimentResult base = run_experiment(config);
        for (const std::uint32_t lanes : {2u, 8u}) {
          config.lanes = lanes;
          const ExperimentResult with_lanes = run_experiment(config);
          SCOPED_TRACE(testing::Message() << "lanes=" << lanes);
          expect_same_result(base, with_lanes);
        }
      }
    }
  }
}

TEST(LaneIdentity, CrashRequeueRunsAreBitIdentical) {
  const BudgetOverride cap(16);
  for (const char* strategy : {"DynamicMatrix", "DynamicMatrix2Phases"}) {
    SCOPED_TRACE(strategy);
    ExperimentConfig config;
    config.kernel = Kernel::kMatmul;
    config.strategy = strategy;
    config.n = 12;
    config.p = 6;
    config.reps = 3;
    config.seed = 7;
    // A crash (factor 0, tasks requeue) and a straggler: the requeue
    // path must keep both presence orientations exact so later lane
    // scans stay identical.
    config.faults = {WorkerFault{0.02, 1, 0.0}, WorkerFault{0.05, 3, 0.2}};
    config.lanes = 1;
    const ExperimentResult base = run_experiment(config);
    config.lanes = 4;
    const ExperimentResult with_lanes = run_experiment(config);
    expect_same_result(base, with_lanes);
    // Crashes actually happened, so the identity covers the requeue path.
    EXPECT_GT(base.reps[0].sim.requeued_tasks, 0u);
  }
}

// Stronger than set equality: the exact enumeration ORDER of each
// request's tasks and blocks must match the serial scan, because the
// engines hand tasks to workers in assignment order and any
// reordering would change timed schedules.
TEST(LaneIdentity, DrainPinsTaskAndBlockOrder) {
  const BudgetOverride cap(16);
  const std::uint32_t n = 30;
  const std::uint32_t workers = 3;
  const std::uint64_t seed = 99;
  {
    DynamicOuterStrategy serial(OuterConfig{n}, workers, seed);
    DynamicOuterStrategy laned(OuterConfig{n}, workers, seed,
                               /*phase2_tasks=*/0, /*lanes=*/4);
    laned.prepare_lanes();
    EXPECT_GT(laned.lane_utilization().lanes_granted, 1u);
    std::uint32_t w = 0;
    for (;;) {
      const auto a = serial.on_request(w);
      const auto b = laned.on_request(w);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) break;
      ASSERT_EQ(a->tasks, b->tasks);  // same ids, same order
      ASSERT_EQ(a->blocks.size(), b->blocks.size());
      for (std::size_t x = 0; x < a->blocks.size(); ++x) {
        EXPECT_EQ(a->blocks[x].operand, b->blocks[x].operand);
        EXPECT_EQ(a->blocks[x].row, b->blocks[x].row);
        EXPECT_EQ(a->blocks[x].col, b->blocks[x].col);
      }
      w = (w + 1) % workers;
    }
    // The laned drain really took the parallel path.
    EXPECT_GT(laned.lane_utilization().parallel_requests, 0u);
  }
  {
    DynamicMatrixStrategy serial(MatmulConfig{11}, workers, seed);
    DynamicMatrixStrategy laned(MatmulConfig{11}, workers, seed,
                                /*phase2_tasks=*/0, /*lanes=*/4);
    laned.prepare_lanes();
    std::uint32_t w = 0;
    for (;;) {
      const auto a = serial.on_request(w);
      const auto b = laned.on_request(w);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) break;
      ASSERT_EQ(a->tasks, b->tasks);
      ASSERT_EQ(a->blocks.size(), b->blocks.size());
      w = (w + 1) % workers;
    }
    EXPECT_GT(laned.lane_utilization().parallel_requests, 0u);
  }
}

// A drained budget degrades the team to one lane; results must still
// be identical (the serial branch) and nothing may deadlock.
TEST(LaneIdentity, DrainedBudgetDegradesToSerial) {
  const BudgetOverride cap(2);
  const ParallelLease holder(2);
  ASSERT_EQ(holder.granted(), 2u);
  DynamicOuterStrategy serial(OuterConfig{20}, 2, 5);
  DynamicOuterStrategy laned(OuterConfig{20}, 2, 5, /*phase2_tasks=*/0,
                             /*lanes=*/8);
  EXPECT_EQ(laned.lane_utilization().lanes_granted, 1u);
  std::uint32_t w = 0;
  for (;;) {
    const auto a = serial.on_request(w);
    const auto b = laned.on_request(w);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    ASSERT_EQ(a->tasks, b->tasks);
    w = (w + 1) % 2;
  }
  EXPECT_EQ(laned.lane_utilization().parallel_requests, 0u);
  EXPECT_GT(laned.lane_utilization().serial_requests, 0u);
}

}  // namespace
}  // namespace hetsched
