// Cross-cutting consistency: the analysis, the simulator and the
// facade must agree across a parameter grid, not just at the paper's
// headline points.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/matmul_analysis.hpp"
#include "analysis/outer_analysis.hpp"
#include "core/experiment.hpp"
#include "platform/platform.hpp"

namespace hetsched {
namespace {

struct GridCase {
  std::uint32_t p;
  std::uint32_t n;
  double tolerance;  // relative
};

class OuterConsistencyTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(OuterConsistencyTest, TwoPhaseTracksAnalysisAcrossGrid) {
  const GridCase& c = GetParam();
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter2Phases";
  config.n = c.n;
  config.p = c.p;
  config.reps = 4;
  config.seed = 1000 + c.p;
  const ExperimentResult result = run_experiment(config);
  EXPECT_NEAR(result.normalized.mean, result.analysis_ratio.mean,
              c.tolerance * result.analysis_ratio.mean)
      << "p=" << c.p << " n=" << c.n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OuterConsistencyTest,
    // p = 5 sits at the edge of the mean-field regime (the paper also
    // reports degraded accuracy at very small p), hence the wide bound.
    ::testing::Values(GridCase{5, 60, 0.20}, GridCase{10, 60, 0.08},
                      GridCase{20, 60, 0.08}, GridCase{20, 120, 0.06},
                      GridCase{40, 80, 0.06}, GridCase{80, 80, 0.06}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.p) + "_n" +
             std::to_string(info.param.n);
    });

class MatmulConsistencyTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(MatmulConsistencyTest, TwoPhaseTracksAnalysisAcrossGrid) {
  const GridCase& c = GetParam();
  ExperimentConfig config;
  config.kernel = Kernel::kMatmul;
  config.strategy = "DynamicMatrix2Phases";
  config.n = c.n;
  config.p = c.p;
  config.reps = 3;
  config.seed = 2000 + c.p;
  const ExperimentResult result = run_experiment(config);
  EXPECT_NEAR(result.normalized.mean, result.analysis_ratio.mean,
              c.tolerance * result.analysis_ratio.mean)
      << "p=" << c.p << " n=" << c.n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatmulConsistencyTest,
    ::testing::Values(GridCase{10, 16, 0.15}, GridCase{20, 20, 0.10},
                      GridCase{40, 24, 0.08}, GridCase{60, 30, 0.08}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.p) + "_n" +
             std::to_string(info.param.n);
    });

TEST(Consistency, ExperimentIsFullyDeterministic) {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter2Phases";
  config.n = 50;
  config.p = 12;
  config.reps = 3;
  config.seed = 77;
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_EQ(a.normalized.mean, b.normalized.mean);
  EXPECT_EQ(a.makespan.mean, b.makespan.mean);
  for (std::size_t r = 0; r < a.reps.size(); ++r) {
    EXPECT_EQ(a.reps[r].sim.total_blocks, b.reps[r].sim.total_blocks);
    EXPECT_EQ(a.reps[r].speeds, b.reps[r].speeds);
  }
}

TEST(Consistency, AnalysisBetaOptimumIsInteriorOnPaperGrid) {
  // The optimizer must not sit on its search boundary for the paper's
  // parameter ranges (that would signal a validity-cap problem).
  for (const std::uint32_t p : {20u, 50u, 100u}) {
    const std::vector<double> rs(p, 1.0 / p);
    const auto outer = OuterAnalysis(rs, 100).optimal_beta();
    EXPECT_GT(outer.x, 0.3);
    EXPECT_LT(outer.x, 15.9);
    const auto mm = MatmulAnalysis(rs, 40).optimal_beta();
    EXPECT_GT(mm.x, 0.3);
    EXPECT_LT(mm.x, 15.9);
  }
}

TEST(Consistency, LowerBoundIsNeverBeatenAcrossStrategyMatrix) {
  for (const char* strategy :
       {"RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases",
        "WorkStealingOuter"}) {
    ExperimentConfig config;
    config.kernel = Kernel::kOuter;
    config.strategy = strategy;
    config.n = 40;
    config.p = 10;
    config.reps = 2;
    config.seed = 3;
    const ExperimentResult result = run_experiment(config);
    for (const auto& rep : result.reps) {
      EXPECT_GT(rep.normalized, 1.0) << strategy;
    }
  }
}

}  // namespace
}  // namespace hetsched
