// Randomized stress tests: seeded random configurations cycled through
// every strategy and both engines, asserting the global invariants that
// must hold regardless of parameters. Each case is cheap; breadth comes
// from the parameterization.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/engine_timed.hpp"
#include "sim/trace.hpp"

namespace hetsched {
namespace {

struct StressDraw {
  std::uint32_t n;
  std::uint32_t p;
  std::string outer_strategy;
  std::string matmul_strategy;
  double phase2_fraction;
  std::vector<double> speeds;
};

StressDraw draw_config(std::uint64_t seed) {
  Rng rng(derive_stream(seed, "stress"));
  StressDraw draw;
  draw.n = 4 + static_cast<std::uint32_t>(rng.next_below(20));
  draw.p = 1 + static_cast<std::uint32_t>(rng.next_below(12));
  const std::vector<std::string> outer{"RandomOuter", "SortedOuter",
                                       "DynamicOuter", "DynamicOuter2Phases",
                                       "WorkStealingOuter"};
  const std::vector<std::string> matmul{"RandomMatrix", "SortedMatrix",
                                        "DynamicMatrix",
                                        "DynamicMatrix2Phases",
                                        "WorkStealingMatmul"};
  draw.outer_strategy = outer[rng.next_below(outer.size())];
  draw.matmul_strategy = matmul[rng.next_below(matmul.size())];
  draw.phase2_fraction = 0.01 + 0.5 * rng.next_double();
  draw.speeds.resize(draw.p);
  for (auto& s : draw.speeds) s = rng.uniform(5.0, 500.0);
  return draw;
}

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, OuterStrategyInvariantsHoldForRandomConfig) {
  const StressDraw draw = draw_config(GetParam());
  OuterStrategyOptions options;
  options.phase2_fraction = draw.phase2_fraction;
  auto strategy = make_outer_strategy(draw.outer_strategy,
                                      OuterConfig{draw.n}, draw.p,
                                      GetParam(), options);
  const Platform platform(draw.speeds);
  RecordingTrace trace;
  const SimResult result = simulate(*strategy, platform, {}, &trace);

  const std::uint64_t total = static_cast<std::uint64_t>(draw.n) * draw.n;
  ASSERT_EQ(result.total_tasks_done, total) << draw.outer_strategy;
  std::set<TaskId> completed;
  for (const auto& ev : trace.completions()) {
    EXPECT_TRUE(completed.insert(ev.task).second);
  }
  for (std::uint32_t w = 0; w < draw.p; ++w) {
    EXPECT_LE(result.workers[w].blocks_received, 2u * draw.n);
  }
  EXPECT_GE(result.total_blocks, 2u * draw.n);
}

TEST_P(StressTest, MatmulStrategyInvariantsHoldForRandomConfig) {
  StressDraw draw = draw_config(GetParam());
  draw.n = 2 + draw.n / 3;  // keep n^3 small
  MatmulStrategyOptions options;
  options.phase2_fraction = draw.phase2_fraction;
  auto strategy = make_matmul_strategy(draw.matmul_strategy,
                                       MatmulConfig{draw.n}, draw.p,
                                       GetParam(), options);
  const Platform platform(draw.speeds);
  const SimResult result = simulate(*strategy, platform);
  const auto n64 = static_cast<std::uint64_t>(draw.n);
  ASSERT_EQ(result.total_tasks_done, n64 * n64 * n64) << draw.matmul_strategy;
  for (std::uint32_t w = 0; w < draw.p; ++w) {
    EXPECT_LE(result.workers[w].blocks_received, 3u * n64 * n64);
  }
}

TEST_P(StressTest, TimedEngineAgreesOnTotalsWithGenerousBandwidth) {
  const StressDraw draw = draw_config(GetParam());
  OuterStrategyOptions options;
  options.phase2_fraction = draw.phase2_fraction;
  auto a = make_outer_strategy(draw.outer_strategy, OuterConfig{draw.n},
                               draw.p, GetParam(), options);
  auto b = make_outer_strategy(draw.outer_strategy, OuterConfig{draw.n},
                               draw.p, GetParam(), options);
  const Platform platform(draw.speeds);
  const SimResult untimed = simulate(*a, platform);
  TimedSimConfig config;
  config.comm.bandwidth = 1e12;
  config.lookahead = 2;
  const TimedSimResult timed = simulate_timed(*b, platform, config);
  EXPECT_EQ(timed.total_tasks_done, untimed.total_tasks_done);
  // Identical request interleavings are not guaranteed, but totals and
  // caps are.
  EXPECT_GE(timed.total_blocks, 2u * draw.n);
  EXPECT_LE(timed.total_blocks,
            static_cast<std::uint64_t>(2u * draw.n) * draw.p);
}

TEST_P(StressTest, ExperimentFacadeRunsRandomConfig) {
  const StressDraw draw = draw_config(GetParam());
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = draw.outer_strategy;
  config.n = draw.n;
  config.p = draw.p;
  config.reps = 2;
  config.seed = GetParam();
  if (draw.outer_strategy.find("2Phases") != std::string::npos) {
    config.phase2_fraction = draw.phase2_fraction;
  }
  const ExperimentResult result = run_experiment(config);
  EXPECT_GT(result.normalized.mean, 0.0);
  EXPECT_EQ(result.reps.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace hetsched
