// Headline reproduction checks: the assertions a reader would make
// against the paper's figures, run at (or modestly below) the paper's
// parameters. These are the repository's acceptance tests.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/homogeneous.hpp"
#include "core/experiment.hpp"

namespace hetsched {
namespace {

double normalized(Kernel kernel, const std::string& strategy, std::uint32_t n,
                  std::uint32_t p, std::uint32_t reps, std::uint64_t seed) {
  ExperimentConfig config;
  config.kernel = kernel;
  config.strategy = strategy;
  config.n = n;
  config.p = p;
  config.reps = reps;
  config.seed = seed;
  return run_experiment(config).normalized.mean;
}

TEST(PaperAnchors, Figure1OrderingOuterN100) {
  // Figure 1: data-aware strategies well below random ones at p=20..300.
  const std::uint32_t n = 100, reps = 5;
  for (const std::uint32_t p : {20u, 100u}) {
    const double random = normalized(Kernel::kOuter, "RandomOuter", n, p, reps, 1);
    const double sorted = normalized(Kernel::kOuter, "SortedOuter", n, p, reps, 1);
    const double dynamic =
        normalized(Kernel::kOuter, "DynamicOuter", n, p, reps, 1);
    EXPECT_GT(random, 1.5 * dynamic) << "p=" << p;
    EXPECT_GT(sorted, 1.5 * dynamic) << "p=" << p;
  }
}

TEST(PaperAnchors, Figure4AnalysisMatchesTwoPhaseOuter) {
  // Figure 4: the analysis curve is indistinguishable from the measured
  // DynamicOuter2Phases curve. We allow 6% per point.
  const std::uint32_t n = 100, reps = 5;
  for (const std::uint32_t p : {20u, 50u, 100u}) {
    ExperimentConfig config;
    config.kernel = Kernel::kOuter;
    config.strategy = "DynamicOuter2Phases";
    config.n = n;
    config.p = p;
    config.reps = reps;
    config.seed = 3;
    const ExperimentResult result = run_experiment(config);
    EXPECT_NEAR(result.normalized.mean, result.analysis_ratio.mean,
                0.06 * result.analysis_ratio.mean)
        << "p=" << p;
  }
}

TEST(PaperAnchors, Figure5LargeVectorsWidenTheGap) {
  // Figure 5 vs Figure 4: the random/data-aware gap grows with N.
  const std::uint32_t p = 50, reps = 3;
  auto gap = [&](std::uint32_t n) {
    const double random =
        normalized(Kernel::kOuter, "RandomOuter", n, p, reps, 5);
    const double two_phase =
        normalized(Kernel::kOuter, "DynamicOuter2Phases", n, p, reps, 5);
    return random / two_phase;
  };
  EXPECT_GT(gap(200), gap(50));
}

TEST(PaperAnchors, Figure6OptimalBetaWindowOuter) {
  // Figure 6: for p=20, N/l=100 the simulated optimum lies in beta in
  // [3, 6], and our analysis-chosen beta lands in the same valley.
  const double beta_star = beta_homogeneous_outer(20, 100);
  EXPECT_GT(beta_star, 3.0);
  EXPECT_LT(beta_star, 6.0);
  // The paper: 98.5% of tasks processed in phase 1 at the optimum.
  const double phase1_share = 1.0 - std::exp(-beta_star);
  EXPECT_GT(phase1_share, 0.97);
  EXPECT_LT(phase1_share, 0.999);
}

TEST(PaperAnchors, Figure9OrderingMatmulN40) {
  // Figure 9 at p=100: Random ~7x LB, Dynamic ~4.4x, 2Phases ~2.5x.
  const std::uint32_t n = 40, p = 100, reps = 3;
  const double random =
      normalized(Kernel::kMatmul, "RandomMatrix", n, p, reps, 7);
  const double dynamic =
      normalized(Kernel::kMatmul, "DynamicMatrix", n, p, reps, 7);
  const double two_phase =
      normalized(Kernel::kMatmul, "DynamicMatrix2Phases", n, p, reps, 7);
  EXPECT_GT(random, 5.5);
  EXPECT_LT(random, 9.0);
  EXPECT_GT(dynamic, 3.0);
  EXPECT_LT(dynamic, 6.0);
  EXPECT_GT(two_phase, 1.8);
  EXPECT_LT(two_phase, 3.2);
  EXPECT_LT(two_phase, dynamic);
  EXPECT_LT(dynamic, random);
}

TEST(PaperAnchors, Figure9AnalysisMatchesTwoPhaseMatmul) {
  // "When the number of processors is large enough (p >= 50), our
  // analysis is able to very accurately predict the performance."
  ExperimentConfig config;
  config.kernel = Kernel::kMatmul;
  config.strategy = "DynamicMatrix2Phases";
  config.n = 40;
  config.p = 100;
  config.reps = 3;
  config.seed = 11;
  const ExperimentResult result = run_experiment(config);
  EXPECT_NEAR(result.normalized.mean, result.analysis_ratio.mean,
              0.05 * result.analysis_ratio.mean);
}

TEST(PaperAnchors, Figure11OptimalBetaMatmul) {
  // Figure 11: analysis optimum beta ~2.95 (2.92 speed-agnostic),
  // i.e. ~94.7% of tasks in phase 1.
  const double beta_star = beta_homogeneous_matmul(100, 40);
  EXPECT_NEAR(beta_star, 2.92, 0.2);
  const double phase1_share = 1.0 - std::exp(-beta_star);
  EXPECT_NEAR(phase1_share, 0.947, 0.02);
}

TEST(PaperAnchors, Section36BetaDeviationAcrossDraws) {
  // "For fixed N/l and p, the deviation among beta values obtained for
  // different speed distributions is at most 0.045."-ish: we check the
  // relative deviation from beta_hom stays within 5%.
  ExperimentConfig config;  // only for scenario plumbing
  const double b_hom = beta_homogeneous_outer(20, 100);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RepOutcome outcome = [&] {
      ExperimentConfig c;
      c.kernel = Kernel::kOuter;
      c.strategy = "DynamicOuter2Phases";
      c.n = 100;
      c.p = 20;
      return run_single(c, seed);
    }();
    // The deployed beta is exactly the speed-agnostic one.
    EXPECT_NEAR(outcome.beta, b_hom, 1e-12);
  }
  (void)config;
}

TEST(PaperAnchors, TwoPhaseNeverBeatsLowerBound) {
  for (const std::uint32_t p : {5u, 20u, 60u}) {
    const double v =
        normalized(Kernel::kOuter, "DynamicOuter2Phases", 60, p, 3, p);
    EXPECT_GT(v, 1.0) << "p=" << p;
  }
}

}  // namespace
}  // namespace hetsched
