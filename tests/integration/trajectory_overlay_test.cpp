// Integration anchor for the observability subsystem: the sampled
// unmarked-task trajectory of a data-aware run must track the ODE
// solution of the paper's analysis (Lemmas 1/2 for the outer product,
// Lemmas 7/8 for matmul).
//
// Stated tolerance: the fluid model ignores discreteness (finite
// batches, integer tasks) and worker asynchrony, which at n = 100 /
// p = 20 leaves a max pointwise gap well under 0.08 over the region
// where the prediction still has mass (>= 0.02); the matmul model at
// n = 40 stays under 0.12. Empirical max gaps are ~0.045 and ~0.075 —
// the asserted bounds leave seed-to-seed headroom without losing the
// ability to catch a broken time mapping (which produces gaps > 0.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "obs/instrument.hpp"
#include "obs/overlay.hpp"

namespace hetsched {
namespace {

struct OverlayError {
  double max_err = 0.0;
  double mean_err = 0.0;
};

OverlayError overlay_error(const ExperimentConfig& config) {
  InstrumentedRep rep;
  run_instrumented_rep(config, derive_stream(config.seed, "rep.0"), {}, rep);

  const TrajectoryModel model(config.kernel, rep.outcome.speeds, config.n);
  const auto& names = rep.sampler.channel_names();
  const auto it =
      std::find(names.begin(), names.end(), "unmarked_fraction");
  EXPECT_NE(it, names.end());
  const auto ch = static_cast<std::size_t>(it - names.begin());

  OverlayError err;
  double sum = 0.0;
  std::size_t compared = 0;
  for (std::size_t row = 0; row < rep.sampler.num_samples(); ++row) {
    const double t = rep.sampler.sample_time(row);
    const double ode = model.unmarked_fraction(t);
    if (ode < 0.02) continue;  // fluid model has lost its mass
    const double gap = std::abs(rep.sampler.sample_value(row, ch) - ode);
    err.max_err = std::max(err.max_err, gap);
    sum += gap;
    ++compared;
  }
  EXPECT_GT(compared, 20u) << "too few comparable samples";
  err.mean_err = sum / static_cast<double>(compared);
  return err;
}

TEST(TrajectoryOverlay, DynamicOuterTracksOdePrediction) {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter";
  config.n = 100;
  config.p = 20;
  config.seed = 20140623;

  const OverlayError err = overlay_error(config);
  EXPECT_LT(err.max_err, 0.08);
  EXPECT_LT(err.mean_err, 0.04);
}

TEST(TrajectoryOverlay, DynamicMatrixTracksOdePrediction) {
  ExperimentConfig config;
  config.kernel = Kernel::kMatmul;
  config.strategy = "DynamicMatrix";
  config.n = 40;
  config.p = 20;
  config.seed = 20140623;

  const OverlayError err = overlay_error(config);
  EXPECT_LT(err.max_err, 0.12);
  EXPECT_LT(err.mean_err, 0.05);
}

TEST(TrajectoryModel, BoundaryBehaviour) {
  // Homogeneous platform, outer kernel: closed-form boundary values.
  const std::vector<double> speeds(10, 50.0);
  const TrajectoryModel model(Kernel::kOuter, speeds, 50);
  EXPECT_NEAR(model.unmarked_fraction(0.0), 1.0, 1e-9);
  EXPECT_NEAR(model.unmarked_fraction(model.total_time()), 0.0, 1e-6);
  EXPECT_EQ(model.unmarked_fraction(model.total_time() * 2.0), 0.0);
  // Strictly decreasing in between.
  double prev = 1.0;
  for (int i = 1; i <= 10; ++i) {
    const double u =
        model.unmarked_fraction(model.total_time() * 0.1 * i);
    EXPECT_LT(u, prev + 1e-12);
    prev = u;
  }
}

}  // namespace
}  // namespace hetsched
