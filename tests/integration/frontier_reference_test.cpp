// Property tests pinning the word-parallel enabled-task frontier of
// the dynamic strategies against the pre-frontier reference semantics:
// a data-aware request must allocate exactly the still-pooled tasks of
// the knowledge extension — (I+i) x (J+j) [x (K+k)] with at least one
// new coordinate — no matter how the frontier enumerates them.
//
// The reference model mirrors the strategy's RNG stream (same
// derive_stream tag, same swap-remove pick discipline) and keeps a
// shadow pool as a plain std::set, then recomputes each expected
// assignment with the old O(y^2)-style nested loops. Runs cover grids
// of n / workers / seeds and a mid-run requeue (the crash path), which
// must land the returned ids back in the frontier's view.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "matmul/dynamic_matrix.hpp"
#include "matmul/matmul_problem.hpp"
#include "outer/dynamic_outer.hpp"
#include "outer/outer_problem.hpp"
#include "runtime/thread_pool.hpp"

namespace hetsched {
namespace {

// The lane-parallel request path must satisfy the same reference
// semantics as the serial frontier, so every grid below also runs with
// a 4-lane team. Raising the budget cap (restored on scope exit) makes
// the lanes actually grant on a small CI box.
struct BudgetOverride {
  explicit BudgetOverride(std::uint32_t capacity) {
    set_parallel_budget_capacity(capacity);
  }
  ~BudgetOverride() { set_parallel_budget_capacity(0); }
};

// Mirrors the strategies' index drawing: uniform pick + swap-remove.
std::uint32_t mirror_pick(Rng& rng, std::vector<std::uint32_t>& unknown) {
  const auto pos = static_cast<std::size_t>(rng.next_below(unknown.size()));
  const std::uint32_t v = unknown[pos];
  unknown[pos] = unknown.back();
  unknown.pop_back();
  return v;
}

struct OuterMirror {
  std::vector<std::uint32_t> known_i, known_j, unknown_i, unknown_j;

  explicit OuterMirror(std::uint32_t n) : unknown_i(n), unknown_j(n) {
    for (std::uint32_t v = 0; v < n; ++v) unknown_i[v] = unknown_j[v] = v;
  }
};

struct MatmulMirror {
  std::vector<std::uint32_t> known_i, known_j, known_k;
  std::vector<std::uint32_t> unknown_i, unknown_j, unknown_k;

  explicit MatmulMirror(std::uint32_t n)
      : unknown_i(n), unknown_j(n), unknown_k(n) {
    for (std::uint32_t v = 0; v < n; ++v) {
      unknown_i[v] = unknown_j[v] = unknown_k[v] = v;
    }
  }
};

TEST(FrontierReference, OuterMatchesNestedLoopReference) {
  const BudgetOverride cap(8);
  for (const std::uint32_t n : {3u, 7u, 30u, 65u}) {
    for (const std::uint32_t workers : {1u, 3u}) {
      for (const std::uint64_t seed : {1ull, 42ull}) {
       for (const std::uint32_t lanes : {1u, 4u}) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " workers=" << workers << " seed=" << seed
                     << " lanes=" << lanes);
        DynamicOuterStrategy strategy(OuterConfig{n}, workers, seed,
                                      /*phase2_tasks=*/0, lanes);
        Rng rng(derive_stream(seed, "outer.dynamic"));
        std::vector<OuterMirror> mirror(workers, OuterMirror(n));
        std::set<TaskId> pooled;
        for (TaskId id = 0; id < static_cast<TaskId>(n) * n; ++id) {
          pooled.insert(id);
        }

        std::uint32_t w = 0;
        bool exhausted = false;
        while (!exhausted) {
          OuterMirror& m = mirror[w];
          // The pure strategy goes random only when unknowns run dry,
          // which a crash-free run never reaches; stop just before.
          if (m.unknown_i.empty() || m.unknown_j.empty()) break;
          const auto a = strategy.on_request(w);
          if (!a.has_value()) {
            exhausted = true;
            break;
          }
          const std::uint32_t i = mirror_pick(rng, m.unknown_i);
          const std::uint32_t j = mirror_pick(rng, m.unknown_j);
          // Old reference semantics: row i against J + j, column j
          // against I, each taken iff still pooled.
          std::set<TaskId> expected;
          auto try_take = [&](TaskId id) {
            if (pooled.erase(id) != 0) expected.insert(id);
          };
          try_take(outer_task_id(n, i, j));
          for (const std::uint32_t j2 : m.known_j) try_take(outer_task_id(n, i, j2));
          for (const std::uint32_t i2 : m.known_i) try_take(outer_task_id(n, i2, j));
          m.known_i.push_back(i);
          m.known_j.push_back(j);

          const std::set<TaskId> actual(a->tasks.begin(), a->tasks.end());
          ASSERT_EQ(actual, expected);
          ASSERT_EQ(a->tasks.size(), actual.size()) << "duplicate task ids";
          w = (w + 1) % workers;
        }
        ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
       }
      }
    }
  }
}

TEST(FrontierReference, OuterMatchesReferenceAfterRequeue) {
  const BudgetOverride cap(8);
  const std::uint32_t n = 20;
  const std::uint64_t seed = 7;
  DynamicOuterStrategy strategy(OuterConfig{n}, 2, seed, /*phase2_tasks=*/0,
                                /*lanes=*/4);
  Rng rng(derive_stream(seed, "outer.dynamic"));
  std::vector<OuterMirror> mirror(2, OuterMirror(n));
  std::set<TaskId> pooled;
  for (TaskId id = 0; id < static_cast<TaskId>(n) * n; ++id) pooled.insert(id);

  std::vector<TaskId> assigned;  // everything handed out so far
  auto serve = [&](std::uint32_t w) {
    OuterMirror& m = mirror[w];
    ASSERT_FALSE(m.unknown_i.empty());
    const auto a = strategy.on_request(w);
    ASSERT_TRUE(a.has_value());
    const std::uint32_t i = mirror_pick(rng, m.unknown_i);
    const std::uint32_t j = mirror_pick(rng, m.unknown_j);
    std::set<TaskId> expected;
    auto try_take = [&](TaskId id) {
      if (pooled.erase(id) != 0) expected.insert(id);
    };
    try_take(outer_task_id(n, i, j));
    for (const std::uint32_t j2 : m.known_j) try_take(outer_task_id(n, i, j2));
    for (const std::uint32_t i2 : m.known_i) try_take(outer_task_id(n, i2, j));
    m.known_i.push_back(i);
    m.known_j.push_back(j);
    const std::set<TaskId> actual(a->tasks.begin(), a->tasks.end());
    ASSERT_EQ(actual, expected);
    assigned.insert(assigned.end(), a->tasks.begin(), a->tasks.end());
  };

  for (int r = 0; r < 6; ++r) serve(static_cast<std::uint32_t>(r % 2));

  // Crash path: every third assigned task goes back to the pool. The
  // frontier's removed-set view must resurface them for later batches.
  std::vector<TaskId> requeued;
  for (std::size_t t = 0; t < assigned.size(); t += 3) {
    requeued.push_back(assigned[t]);
  }
  ASSERT_TRUE(strategy.requeue(requeued));
  for (const TaskId id : requeued) pooled.insert(id);

  for (int r = 0; r < 10; ++r) serve(static_cast<std::uint32_t>(r % 2));
  ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
}

TEST(FrontierReference, MatmulMatchesNestedLoopReference) {
  const BudgetOverride cap(8);
  for (const std::uint32_t n : {2u, 5u, 17u, 40u}) {
    for (const std::uint32_t workers : {1u, 3u}) {
      for (const std::uint64_t seed : {1ull, 42ull}) {
       for (const std::uint32_t lanes : {1u, 4u}) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " workers=" << workers << " seed=" << seed
                     << " lanes=" << lanes);
        DynamicMatrixStrategy strategy(MatmulConfig{n}, workers, seed,
                                       /*phase2_tasks=*/0, lanes);
        Rng rng(derive_stream(seed, "matmul.dynamic"));
        std::vector<MatmulMirror> mirror(workers, MatmulMirror(n));
        std::set<TaskId> pooled;
        const TaskId total = static_cast<TaskId>(n) * n * n;
        for (TaskId id = 0; id < total; ++id) pooled.insert(id);

        std::uint32_t w = 0;
        bool exhausted = false;
        while (!exhausted) {
          MatmulMirror& m = mirror[w];
          if (m.unknown_i.empty()) break;  // random fallback from here on
          const auto a = strategy.on_request(w);
          if (!a.has_value()) {
            exhausted = true;
            break;
          }
          const std::uint32_t i = mirror_pick(rng, m.unknown_i);
          const std::uint32_t j = mirror_pick(rng, m.unknown_j);
          const std::uint32_t k = mirror_pick(rng, m.unknown_k);
          // Old reference semantics: all of (I+i) x (J+j) x (K+k) with
          // at least one new coordinate, each taken iff still pooled.
          std::set<TaskId> expected;
          auto try_take = [&](std::uint32_t ti, std::uint32_t tj,
                              std::uint32_t tk) {
            const TaskId id = matmul_task_id(n, ti, tj, tk);
            if (pooled.erase(id) != 0) expected.insert(id);
          };
          auto with_new = [&](std::uint32_t ti, std::uint32_t tj,
                              std::uint32_t tk) {
            const bool any_new = ti == i || tj == j || tk == k;
            if (any_new) try_take(ti, tj, tk);
          };
          std::vector<std::uint32_t> all_i = m.known_i;
          std::vector<std::uint32_t> all_j = m.known_j;
          std::vector<std::uint32_t> all_k = m.known_k;
          all_i.push_back(i);
          all_j.push_back(j);
          all_k.push_back(k);
          for (const std::uint32_t ti : all_i) {
            for (const std::uint32_t tj : all_j) {
              for (const std::uint32_t tk : all_k) with_new(ti, tj, tk);
            }
          }
          m.known_i.push_back(i);
          m.known_j.push_back(j);
          m.known_k.push_back(k);

          const std::set<TaskId> actual(a->tasks.begin(), a->tasks.end());
          ASSERT_EQ(actual, expected);
          ASSERT_EQ(a->tasks.size(), actual.size()) << "duplicate task ids";
          w = (w + 1) % workers;
        }
        ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
       }
      }
    }
  }
}

TEST(FrontierReference, MatmulMatchesReferenceAfterRequeue) {
  const BudgetOverride cap(8);
  const std::uint32_t n = 9;
  const std::uint64_t seed = 11;
  DynamicMatrixStrategy strategy(MatmulConfig{n}, 2, seed, /*phase2_tasks=*/0,
                                 /*lanes=*/4);
  Rng rng(derive_stream(seed, "matmul.dynamic"));
  std::vector<MatmulMirror> mirror(2, MatmulMirror(n));
  std::set<TaskId> pooled;
  const TaskId total = static_cast<TaskId>(n) * n * n;
  for (TaskId id = 0; id < total; ++id) pooled.insert(id);

  std::vector<TaskId> assigned;
  auto serve = [&](std::uint32_t w) {
    MatmulMirror& m = mirror[w];
    ASSERT_FALSE(m.unknown_i.empty());
    const auto a = strategy.on_request(w);
    ASSERT_TRUE(a.has_value());
    const std::uint32_t i = mirror_pick(rng, m.unknown_i);
    const std::uint32_t j = mirror_pick(rng, m.unknown_j);
    const std::uint32_t k = mirror_pick(rng, m.unknown_k);
    std::set<TaskId> expected;
    auto with_new = [&](std::uint32_t ti, std::uint32_t tj, std::uint32_t tk) {
      if (ti != i && tj != j && tk != k) return;
      const TaskId id = matmul_task_id(n, ti, tj, tk);
      if (pooled.erase(id) != 0) expected.insert(id);
    };
    std::vector<std::uint32_t> all_i = m.known_i;
    std::vector<std::uint32_t> all_j = m.known_j;
    std::vector<std::uint32_t> all_k = m.known_k;
    all_i.push_back(i);
    all_j.push_back(j);
    all_k.push_back(k);
    for (const std::uint32_t ti : all_i) {
      for (const std::uint32_t tj : all_j) {
        for (const std::uint32_t tk : all_k) with_new(ti, tj, tk);
      }
    }
    m.known_i.push_back(i);
    m.known_j.push_back(j);
    m.known_k.push_back(k);
    const std::set<TaskId> actual(a->tasks.begin(), a->tasks.end());
    ASSERT_EQ(actual, expected);
    assigned.insert(assigned.end(), a->tasks.begin(), a->tasks.end());
  };

  for (int r = 0; r < 6; ++r) serve(static_cast<std::uint32_t>(r % 2));

  std::vector<TaskId> requeued;
  for (std::size_t t = 0; t < assigned.size(); t += 3) {
    requeued.push_back(assigned[t]);
  }
  ASSERT_TRUE(strategy.requeue(requeued));
  for (const TaskId id : requeued) pooled.insert(id);

  for (int r = 0; r < 6; ++r) serve(static_cast<std::uint32_t>(r % 2));
  ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
}


// ---- Run-expansion order pinning (the run-length Assignment protocol) ----
//
// The tests above pin the allocated *set*; these pin the *sequence*: the
// run-encoded grants (Assignment::task_runs, expanded scalars-first then
// runs ascending-bit by the iteration facade) must replay the legacy
// per-task push order exactly — corner, i-slab (J ascending), j-slab
// (I ascending), k-faces (I x J ascending) for matmul; row (J + j
// ascending) then column (I ascending) for the outer product — across
// n / workers / seed / lane grids, multi-word masks (n > 64) and
// crash-requeue reps.

// Legacy per-task emission order of one outer request, recomputed from
// the mirror: row i against J + j ascending, then column j against I
// ascending, each taken iff still pooled.
std::vector<TaskId> outer_expected_order(std::set<TaskId>& pooled,
                                         const OuterMirror& m, std::uint32_t n,
                                         std::uint32_t i, std::uint32_t j) {
  std::vector<TaskId> expected;
  std::vector<std::uint32_t> all_j = m.known_j;
  all_j.push_back(j);
  std::sort(all_j.begin(), all_j.end());
  std::vector<std::uint32_t> all_i = m.known_i;
  std::sort(all_i.begin(), all_i.end());
  auto try_take = [&](TaskId id) {
    if (pooled.erase(id) != 0) expected.push_back(id);
  };
  for (const std::uint32_t j2 : all_j) try_take(outer_task_id(n, i, j2));
  for (const std::uint32_t i2 : all_i) try_take(outer_task_id(n, i2, j));
  return expected;
}

// Legacy per-task emission order of one matmul request: the corner
// k-run (i, j, ·), the i-slab runs (i, j2, ·) for j2 in J ascending,
// the j-slab runs (i2, j, ·) for i2 in I ascending, then the k-face
// probes (i2, j2, k) for i2 in I, j2 in J ascending; every k-run scans
// K + k ascending, every candidate taken iff still pooled.
std::vector<TaskId> matmul_expected_order(std::set<TaskId>& pooled,
                                          const MatmulMirror& m,
                                          std::uint32_t n, std::uint32_t i,
                                          std::uint32_t j, std::uint32_t k) {
  std::vector<TaskId> expected;
  std::vector<std::uint32_t> all_k = m.known_k;
  all_k.push_back(k);
  std::sort(all_k.begin(), all_k.end());
  std::vector<std::uint32_t> old_i = m.known_i;
  std::sort(old_i.begin(), old_i.end());
  std::vector<std::uint32_t> old_j = m.known_j;
  std::sort(old_j.begin(), old_j.end());
  auto try_take = [&](std::uint32_t ti, std::uint32_t tj, std::uint32_t tk) {
    const TaskId id = matmul_task_id(n, ti, tj, tk);
    if (pooled.erase(id) != 0) expected.push_back(id);
  };
  auto k_run = [&](std::uint32_t ti, std::uint32_t tj) {
    for (const std::uint32_t tk : all_k) try_take(ti, tj, tk);
  };
  k_run(i, j);                                      // corner
  for (const std::uint32_t j2 : old_j) k_run(i, j2);  // i-slab
  for (const std::uint32_t i2 : old_i) k_run(i2, j);  // j-slab
  for (const std::uint32_t i2 : old_i) {              // k-face
    for (const std::uint32_t j2 : old_j) try_take(i2, j2, k);
  }
  return expected;
}

// Expands an assignment's task channels in facade order and checks the
// run-level invariants the protocol promises: runs carry a correct
// cached popcount, no empty runs, and the data-aware path emits tasks
// only run-encoded.
std::vector<TaskId> expand_tasks_checked(const Assignment& a) {
  EXPECT_TRUE(a.tasks.empty())
      << "data-aware grant leaked onto the scalar channel";
  std::uint64_t counted = 0;
  for (const TaskRun& r : a.task_runs) {
    EXPECT_NE(r.bits, 0u) << "empty task run emitted";
    EXPECT_EQ(r.count, static_cast<std::uint32_t>(std::popcount(r.bits)));
    counted += r.count;
  }
  std::vector<TaskId> out;
  a.for_each_task([&](TaskId t) { out.push_back(t); });
  EXPECT_EQ(out.size(), counted);
  EXPECT_EQ(a.task_count(), counted);
  return out;
}

TEST(FrontierReference, OuterRunExpansionMatchesLegacyOrder) {
  const BudgetOverride cap(8);
  for (const std::uint32_t n : {3u, 30u, 65u, 130u}) {
    for (const std::uint32_t workers : {1u, 3u}) {
      for (const std::uint64_t seed : {1ull, 42ull}) {
       for (const std::uint32_t lanes : {1u, 4u}) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " workers=" << workers << " seed=" << seed
                     << " lanes=" << lanes);
        DynamicOuterStrategy strategy(OuterConfig{n}, workers, seed,
                                      /*phase2_tasks=*/0, lanes);
        Rng rng(derive_stream(seed, "outer.dynamic"));
        std::vector<OuterMirror> mirror(workers, OuterMirror(n));
        std::set<TaskId> pooled;
        for (TaskId id = 0; id < static_cast<TaskId>(n) * n; ++id) {
          pooled.insert(id);
        }

        Assignment out;
        std::uint32_t w = 0;
        // Stop when the pool drains (on_request returns false then) or
        // the round-robin worker's unknown sets run dry (its next
        // service would be the random fallback, covered elsewhere).
        while (!pooled.empty() && !mirror[w].unknown_i.empty() &&
               !mirror[w].unknown_j.empty()) {
          OuterMirror& m = mirror[w];
          ASSERT_TRUE(strategy.on_request(w, out));
          const std::uint32_t i = mirror_pick(rng, m.unknown_i);
          const std::uint32_t j = mirror_pick(rng, m.unknown_j);
          const std::vector<TaskId> expected =
              outer_expected_order(pooled, m, n, i, j);
          m.known_i.push_back(i);
          m.known_j.push_back(j);
          ASSERT_EQ(expand_tasks_checked(out), expected);
          w = (w + 1) % workers;
        }
        ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
       }
      }
    }
  }
}

TEST(FrontierReference, MatmulRunExpansionMatchesLegacyOrder) {
  const BudgetOverride cap(8);
  for (const std::uint32_t n : {2u, 5u, 17u, 40u, 70u}) {
    for (const std::uint32_t workers : {1u, 3u}) {
      for (const std::uint64_t seed : {1ull, 42ull}) {
       for (const std::uint32_t lanes : {1u, 4u}) {
        // n = 70 exercises the multi-word (two mask words) flat scan;
        // one grid cell keeps its reference-model cost in check.
        if (n == 70 && (workers != 3 || seed != 1)) continue;
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " workers=" << workers << " seed=" << seed
                     << " lanes=" << lanes);
        DynamicMatrixStrategy strategy(MatmulConfig{n}, workers, seed,
                                       /*phase2_tasks=*/0, lanes);
        Rng rng(derive_stream(seed, "matmul.dynamic"));
        std::vector<MatmulMirror> mirror(workers, MatmulMirror(n));
        std::set<TaskId> pooled;
        const TaskId total = static_cast<TaskId>(n) * n * n;
        for (TaskId id = 0; id < total; ++id) pooled.insert(id);

        Assignment out;
        std::uint32_t w = 0;
        // As in the outer test: a drained pool fails on_request, and a
        // dry unknown set would switch the worker to the fallback path.
        while (!pooled.empty() && !mirror[w].unknown_i.empty()) {
          MatmulMirror& m = mirror[w];
          // Untainted data-aware service ships exactly 3 * (2y + 1)
          // blocks; the run channel must account them all.
          const auto y = static_cast<std::uint64_t>(m.known_i.size());
          ASSERT_TRUE(strategy.on_request(w, out));
          ASSERT_EQ(out.block_count(), 3 * (2 * y + 1));
          const std::uint32_t i = mirror_pick(rng, m.unknown_i);
          const std::uint32_t j = mirror_pick(rng, m.unknown_j);
          const std::uint32_t k = mirror_pick(rng, m.unknown_k);
          const std::vector<TaskId> expected =
              matmul_expected_order(pooled, m, n, i, j, k);
          m.known_i.push_back(i);
          m.known_j.push_back(j);
          m.known_k.push_back(k);
          ASSERT_EQ(expand_tasks_checked(out), expected);
          w = (w + 1) % workers;
        }
        ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
       }
      }
    }
  }
}

TEST(FrontierReference, OuterRunExpansionOrderAfterRequeue) {
  const BudgetOverride cap(8);
  const std::uint32_t n = 67;  // multi-word masks through the crash path
  const std::uint64_t seed = 9;
  for (const std::uint32_t lanes : {1u, 4u}) {
    SCOPED_TRACE(testing::Message() << "lanes=" << lanes);
    DynamicOuterStrategy strategy(OuterConfig{n}, 2, seed, /*phase2_tasks=*/0,
                                  lanes);
    Rng rng(derive_stream(seed, "outer.dynamic"));
    std::vector<OuterMirror> mirror(2, OuterMirror(n));
    std::set<TaskId> pooled;
    for (TaskId id = 0; id < static_cast<TaskId>(n) * n; ++id) {
      pooled.insert(id);
    }

    Assignment out;
    std::vector<TaskId> assigned;
    auto serve = [&](std::uint32_t w) {
      OuterMirror& m = mirror[w];
      ASSERT_FALSE(m.unknown_i.empty());
      ASSERT_TRUE(strategy.on_request(w, out));
      const std::uint32_t i = mirror_pick(rng, m.unknown_i);
      const std::uint32_t j = mirror_pick(rng, m.unknown_j);
      const std::vector<TaskId> expected =
          outer_expected_order(pooled, m, n, i, j);
      m.known_i.push_back(i);
      m.known_j.push_back(j);
      const std::vector<TaskId> actual = expand_tasks_checked(out);
      ASSERT_EQ(actual, expected);
      assigned.insert(assigned.end(), actual.begin(), actual.end());
    };

    for (int r = 0; r < 8; ++r) serve(static_cast<std::uint32_t>(r % 2));

    std::vector<TaskId> requeued;
    for (std::size_t t = 0; t < assigned.size(); t += 3) {
      requeued.push_back(assigned[t]);
    }
    ASSERT_TRUE(strategy.requeue(requeued));
    for (const TaskId id : requeued) pooled.insert(id);

    for (int r = 0; r < 12; ++r) serve(static_cast<std::uint32_t>(r % 2));
    ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
  }
}

TEST(FrontierReference, MatmulRunExpansionOrderAfterRequeue) {
  const BudgetOverride cap(8);
  const std::uint32_t n = 70;  // multi-word masks through the crash path
  const std::uint64_t seed = 13;
  for (const std::uint32_t lanes : {1u, 4u}) {
    SCOPED_TRACE(testing::Message() << "lanes=" << lanes);
    DynamicMatrixStrategy strategy(MatmulConfig{n}, 2, seed,
                                   /*phase2_tasks=*/0, lanes);
    Rng rng(derive_stream(seed, "matmul.dynamic"));
    std::vector<MatmulMirror> mirror(2, MatmulMirror(n));
    std::set<TaskId> pooled;
    const TaskId total = static_cast<TaskId>(n) * n * n;
    for (TaskId id = 0; id < total; ++id) pooled.insert(id);

    Assignment out;
    std::vector<TaskId> assigned;
    auto serve = [&](std::uint32_t w) {
      MatmulMirror& m = mirror[w];
      ASSERT_FALSE(m.unknown_i.empty());
      ASSERT_TRUE(strategy.on_request(w, out));
      const std::uint32_t i = mirror_pick(rng, m.unknown_i);
      const std::uint32_t j = mirror_pick(rng, m.unknown_j);
      const std::uint32_t k = mirror_pick(rng, m.unknown_k);
      const std::vector<TaskId> expected =
          matmul_expected_order(pooled, m, n, i, j, k);
      m.known_i.push_back(i);
      m.known_j.push_back(j);
      m.known_k.push_back(k);
      const std::vector<TaskId> actual = expand_tasks_checked(out);
      ASSERT_EQ(actual, expected);
      assigned.insert(assigned.end(), actual.begin(), actual.end());
    };

    // Enough serves that the requeued ids land inside later windows
    // (the exhaustion filters must resurrect their rows/columns/faces).
    for (int r = 0; r < 16; ++r) serve(static_cast<std::uint32_t>(r % 2));

    std::vector<TaskId> requeued;
    for (std::size_t t = 0; t < assigned.size(); t += 3) {
      requeued.push_back(assigned[t]);
    }
    ASSERT_TRUE(strategy.requeue(requeued));
    for (const TaskId id : requeued) pooled.insert(id);

    for (int r = 0; r < 16; ++r) serve(static_cast<std::uint32_t>(r % 2));
    ASSERT_EQ(strategy.unassigned_tasks(), pooled.size());
  }
}

}  // namespace
}  // namespace hetsched
