#include "obs/analyze.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "dag/cholesky.hpp"
#include "dag/dag_engine.hpp"
#include "obs/instrument.hpp"
#include "sim/trace.hpp"

namespace hetsched {
namespace {

// One traced flat/timed repetition plus the meta record the CLI would
// write next to it (tools/hetsched_cli.cpp --events-out).
struct TracedRun {
  InstrumentedRep rep;
  TraceMeta meta;
};

void run_traced(const ExperimentConfig& config, TracedRun& out,
                std::size_t max_events = 1u << 20) {
  InstrumentOptions options;
  options.max_trace_events = max_events;
  run_instrumented_rep(config, derive_stream(config.seed, "rep.0"), options,
                       out.rep);
  out.meta.engine = config.timed ? "timed" : "flat";
  out.meta.kernel = to_string(config.kernel);
  out.meta.strategy = config.strategy;
  out.meta.n = config.n;
  out.meta.p = config.p;
  out.meta.makespan = out.rep.outcome.sim.makespan;
  out.meta.bandwidth = config.comm.bandwidth;
  out.meta.speeds = out.rep.outcome.speeds;
  for (const auto& w : out.rep.outcome.sim.workers) {
    out.meta.workers.push_back({w.tasks_done, w.blocks_received, w.busy_time,
                                w.finish_time, w.starved_time});
  }
}

ExperimentConfig small_outer_config() {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter";
  config.n = 12;
  config.p = 4;
  config.seed = 7;
  return config;
}

TEST(AnalyzeTrace, WorkerRowsUseExactEngineStats) {
  TracedRun run;
  run_traced(small_outer_config(), run);
  const TraceAnalysis analysis =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler);

  ASSERT_EQ(analysis.workers.size(), 4u);
  std::uint64_t tasks = 0;
  for (std::size_t k = 0; k < analysis.workers.size(); ++k) {
    const auto& row = analysis.workers[k];
    EXPECT_TRUE(row.exact);
    EXPECT_EQ(row.worker, k);
    EXPECT_DOUBLE_EQ(row.busy, run.rep.outcome.sim.workers[k].busy_time);
    EXPECT_DOUBLE_EQ(row.finish, run.rep.outcome.sim.workers[k].finish_time);
    EXPECT_GE(row.idle, 0.0);
    EXPECT_GE(row.tail_idle, 0.0);
    EXPECT_NEAR(row.comm,
                static_cast<double>(row.blocks) / run.meta.bandwidth, 1e-12);
    tasks += row.tasks;
  }
  EXPECT_EQ(tasks, 144u);  // n^2 outer-product tasks
  EXPECT_TRUE(analysis.warnings.empty());
}

TEST(AnalyzeTrace, StreamAndInMemoryReportsAreIdentical) {
  ExperimentConfig config = small_outer_config();
  config.strategy = "DynamicOuter2Phases";
  config.phase2_fraction = std::exp(-2.0);
  TracedRun run;
  run_traced(config, run);

  std::ostringstream file;
  write_trace_jsonl(file, run.rep.recording, run.meta, &run.rep.sampler);

  const TraceAnalysis in_memory =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler);
  std::istringstream in(file.str());
  const TraceAnalysis from_stream = analyze_trace_stream(in);

  std::ostringstream a, b;
  write_analysis_json(a, in_memory);
  write_analysis_json(b, from_stream);
  EXPECT_EQ(a.str(), b.str());

  std::ostringstream ma, mb;
  write_analysis_markdown(ma, in_memory);
  write_analysis_markdown(mb, from_stream);
  EXPECT_EQ(ma.str(), mb.str());
}

TEST(AnalyzeTrace, PhaseTimelineSplitsAtRecordedSwitch) {
  ExperimentConfig config = small_outer_config();
  config.strategy = "DynamicOuter2Phases";
  config.phase2_fraction = std::exp(-2.0);
  TracedRun run;
  run_traced(config, run);
  ASSERT_EQ(run.rep.recording.phase_switches().size(), 1u);
  const double switch_time = run.rep.recording.phase_switches()[0].time;

  const TraceAnalysis analysis =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler);
  ASSERT_EQ(analysis.phases.size(), 2u);
  EXPECT_EQ(analysis.phases[0].name, "phase1");
  EXPECT_EQ(analysis.phases[1].name, "phase2");
  EXPECT_DOUBLE_EQ(analysis.phases[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(analysis.phases[0].end, switch_time);
  EXPECT_DOUBLE_EQ(analysis.phases[1].begin, switch_time);
  EXPECT_DOUBLE_EQ(analysis.phases[1].end, run.meta.makespan);
  EXPECT_EQ(analysis.phases[0].tasks + analysis.phases[1].tasks,
            run.rep.recording.completions().size());
  EXPECT_GT(analysis.phases[0].tasks, 0u);
  EXPECT_GT(analysis.phases[1].tasks, 0u);
}

TEST(AnalyzeTrace, CriticalPathEndsAtTheMakespan) {
  TracedRun run;
  run_traced(small_outer_config(), run);
  const TraceAnalysis analysis =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler);

  ASSERT_FALSE(analysis.critical_path.empty());
  const auto& last = analysis.critical_path.back();
  // The anchor is the latest completion; in the flat engine that is
  // within one task of the makespan.
  EXPECT_NEAR(last.finish, run.meta.makespan, run.meta.makespan * 0.05);
  double prev_finish = 0.0;
  double compute = 0.0, wait = 0.0;
  for (const auto& hop : analysis.critical_path) {
    EXPECT_GE(hop.start, prev_finish - 1e-6);  // execution order
    EXPECT_GE(hop.finish, hop.start);
    EXPECT_GE(hop.wait, 0.0);
    EXPECT_LT(hop.worker, run.meta.p);
    prev_finish = hop.finish;
    compute += hop.finish - hop.start;
    wait += hop.wait;
  }
  EXPECT_NEAR(analysis.critical_compute, compute, 1e-9);
  EXPECT_NEAR(analysis.critical_wait, wait, 1e-9);
  // The chain spans the run: compute + wait reaches the anchor.
  EXPECT_LE(analysis.critical_compute, run.meta.makespan + 1e-9);
}

TEST(AnalyzeTrace, OdeDivergenceVerdictFollowsThreshold) {
  TracedRun run;
  run_traced(small_outer_config(), run);

  AnalyzeOptions strict;
  strict.ode_alarm_threshold = 1e-12;
  const TraceAnalysis alarmed =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler, strict);
  ASSERT_TRUE(alarmed.ode_available);
  EXPECT_GT(alarmed.ode_max_divergence, 0.0);
  EXPECT_GE(alarmed.ode_integrated_divergence, 0.0);
  EXPECT_TRUE(alarmed.ode_alarm);

  AnalyzeOptions lax;
  lax.ode_alarm_threshold = 10.0;
  const TraceAnalysis ok =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler, lax);
  EXPECT_FALSE(ok.ode_alarm);
  // A dynamic strategy on n=12 tracks the fluid model loosely but
  // should not diverge by more than the whole range.
  EXPECT_LT(ok.ode_max_divergence, 1.0);

  // No sampled series => no verdict, no alarm.
  const TraceAnalysis blind = analyze_trace(run.rep.recording, run.meta);
  EXPECT_FALSE(blind.ode_available);
  EXPECT_FALSE(blind.ode_alarm);
}

TEST(AnalyzeTrace, TruncatedTraceCarriesWarning) {
  TracedRun run;
  run_traced(small_outer_config(), run, /*max_events=*/50);
  ASSERT_GT(run.rep.recording.dropped_events(), 0u);
  const TraceAnalysis analysis =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler);
  ASSERT_FALSE(analysis.warnings.empty());
  EXPECT_NE(analysis.warnings[0].find("truncated"), std::string::npos);
  // The markdown surfaces it as a blockquote.
  std::ostringstream md;
  write_analysis_markdown(md, analysis);
  EXPECT_NE(md.str().find("truncated"), std::string::npos);
}

TEST(AnalyzeTrace, CholeskyDagTraceProducesAllSections) {
  const CholeskyGraph cholesky = build_cholesky_graph(6);
  Platform platform({10.0, 25.0, 40.0, 80.0});
  auto policy = make_dag_policy("CriticalPathDag", 11);
  RecordingTrace trace;
  DagSimConfig sim_config;
  sim_config.seed = 11;
  const DagSimResult result =
      simulate_dag(cholesky.graph, platform, *policy, sim_config, &trace);

  TraceMeta meta;
  meta.engine = "dag";
  meta.strategy = "CriticalPathDag";
  meta.n = cholesky.tiles;
  meta.p = 4;
  meta.makespan = result.makespan;
  meta.speeds = platform.speeds();
  meta.graph_critical_path = cholesky.graph.critical_path();
  meta.makespan_lower_bound =
      DagSimResult::makespan_lower_bound(cholesky.graph, platform);
  for (const auto& w : result.workers) {
    meta.workers.push_back({w.tasks_done, w.blocks_received, w.busy_time,
                            w.finish_time, w.starved_time});
  }

  const TraceAnalysis analysis = analyze_trace(trace, meta);
  ASSERT_EQ(analysis.workers.size(), 4u);
  std::uint64_t tasks = 0;
  for (const auto& row : analysis.workers) {
    EXPECT_TRUE(row.exact);
    tasks += row.tasks;
  }
  EXPECT_EQ(tasks, cholesky.graph.num_tasks());
  ASSERT_EQ(analysis.phases.size(), 1u);
  EXPECT_EQ(analysis.phases[0].name, "run");
  ASSERT_FALSE(analysis.critical_path.empty());
  EXPECT_FALSE(analysis.ode_available);

  // Round-trip through the file format preserves the DAG bounds.
  std::ostringstream file;
  write_trace_jsonl(file, trace, meta);
  EXPECT_NE(file.str().find("\"graph_critical_path\""), std::string::npos);
  EXPECT_NE(file.str().find("\"makespan_lower_bound\""), std::string::npos);
  std::istringstream in(file.str());
  const TraceAnalysis from_stream = analyze_trace_stream(in);
  std::ostringstream a, b;
  write_analysis_json(a, analysis);
  write_analysis_json(b, from_stream);
  EXPECT_EQ(a.str(), b.str());
}

TEST(AnalyzeTrace, ReportsCarrySchemaAndAllFourSections) {
  TracedRun run;
  run_traced(small_outer_config(), run);
  const TraceAnalysis analysis =
      analyze_trace(run.rep.recording, run.meta, &run.rep.sampler);

  std::ostringstream json;
  write_analysis_json(json, analysis);
  EXPECT_NE(json.str().find("\"schema\": \"hetsched-analysis/1\""),
            std::string::npos);
  for (const char* key : {"\"workers\"", "\"phases\"", "\"critical_path\"",
                          "\"ode\"", "\"warnings\""}) {
    EXPECT_NE(json.str().find(key), std::string::npos) << key;
  }

  std::ostringstream md;
  write_analysis_markdown(md, analysis);
  for (const char* header :
       {"# Trace analysis", "## Per-worker time attribution",
        "## Phase timeline", "## Critical path", "## ODE divergence"}) {
    EXPECT_NE(md.str().find(header), std::string::npos) << header;
  }
}

TEST(AnalyzeTraceStream, MalformedInputThrows) {
  {
    std::istringstream in("this is not json\n");
    EXPECT_THROW(analyze_trace_stream(in), std::runtime_error);
  }
  {
    // Valid JSON but no meta record.
    std::istringstream in("{\"type\":\"complete\",\"w\":0,\"t\":1,\"task\":0}\n");
    EXPECT_THROW(analyze_trace_stream(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(analyze_trace_stream(in), std::runtime_error);
  }
}

}  // namespace
}  // namespace hetsched
