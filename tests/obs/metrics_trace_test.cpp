#include "obs/metrics_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/experiment.hpp"
#include "obs/instrument.hpp"
#include "outer/outer_factory.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

std::uint64_t counter_value(const MetricsRegistry& reg,
                            const std::string& name) {
  for (const auto& [n, v] : reg.counters()) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

bool has_gauge(const MetricsRegistry& reg, const std::string& name) {
  for (const auto& [n, v] : reg.gauges()) {
    if (n == name) return true;
  }
  return false;
}

TEST(MetricsTrace, CountersMatchSimResultTotals) {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter";
  config.n = 16;
  config.p = 4;
  config.seed = 7;

  InstrumentedRep rep;
  run_instrumented_rep(config, derive_stream(config.seed, "rep.0"), {}, rep);

  const std::uint64_t total_tasks = 16ull * 16ull;
  EXPECT_EQ(counter_value(rep.registry, "trace.tasks_completed"), total_tasks);
  EXPECT_EQ(counter_value(rep.registry, "sim.tasks_done"), total_tasks);
  EXPECT_EQ(counter_value(rep.registry, "trace.tasks_assigned"), total_tasks);
  EXPECT_EQ(counter_value(rep.registry, "trace.blocks_fetched"),
            rep.outcome.sim.total_blocks);
  EXPECT_EQ(counter_value(rep.registry, "sim.blocks"),
            rep.outcome.sim.total_blocks);
  // The dynamic outer strategy reports every shipped block through
  // on_data_fetch, so the fine-grained count equals the batch totals.
  EXPECT_EQ(counter_value(rep.registry, "trace.data_fetches"),
            rep.outcome.sim.total_blocks);
  // Outer tasks need 2 inputs; reuse = inputs needed minus shipped,
  // clamped per assignment (a batch may ship blocks ahead of tasks),
  // so recompute the expectation from the recorded assignments.
  std::uint64_t expected_reused = 0;
  for (const auto& event : rep.recording.assignments()) {
    const std::uint64_t required = 2 * event.assignment.task_count();
    if (required > event.assignment.block_count()) {
      expected_reused += required - event.assignment.block_count();
    }
  }
  EXPECT_EQ(counter_value(rep.registry, "trace.blocks_reused"),
            expected_reused);
  EXPECT_GE(counter_value(rep.registry, "trace.blocks_reused"),
            2 * total_tasks - rep.outcome.sim.total_blocks);
  // Pure dynamic strategy: no phase switch.
  EXPECT_EQ(counter_value(rep.registry, "trace.phase_switches"), 0u);
  EXPECT_FALSE(rep.phase_switched);
  // Every worker retires exactly once at the end of a crash-free run.
  EXPECT_EQ(counter_value(rep.registry, "trace.retirements"), 4u);
  // Per-worker gauges published by the engine.
  for (std::uint32_t k = 0; k < 4; ++k) {
    const std::string prefix = "worker." + std::to_string(k) + ".";
    EXPECT_TRUE(has_gauge(rep.registry, prefix + "busy_time"));
    EXPECT_TRUE(has_gauge(rep.registry, prefix + "idle_time"));
    EXPECT_TRUE(has_gauge(rep.registry, prefix + "comm_time"));
  }
}

TEST(MetricsTrace, TwoPhaseStrategySwitchesExactlyOnce) {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter2Phases";
  config.n = 16;
  config.p = 4;
  config.seed = 3;
  // Pin the switch point: the auto (homogeneous-beta) threshold rounds
  // to zero tasks at this small scale, which would mean no switch.
  config.phase2_fraction = 0.2;

  InstrumentedRep rep;
  run_instrumented_rep(config, derive_stream(config.seed, "rep.0"), {}, rep);

  EXPECT_EQ(counter_value(rep.registry, "trace.phase_switches"), 1u);
  EXPECT_TRUE(rep.phase_switched);
  EXPECT_GE(rep.phase_switch_time, 0.0);
  EXPECT_LE(rep.phase_switch_time, rep.outcome.sim.makespan);
  EXPECT_GT(rep.phase_switch_tasks_remaining, 0u);
  EXPECT_LT(rep.phase_switch_tasks_remaining, 16ull * 16ull);
  EXPECT_TRUE(has_gauge(rep.registry, "phase.switch_time"));
  EXPECT_TRUE(has_gauge(rep.registry, "phase.switch_tasks_remaining"));

  // The sampled phase channel must step from 1 to 2 and never back.
  const auto& names = rep.sampler.channel_names();
  const auto it = std::find(names.begin(), names.end(), "phase");
  ASSERT_NE(it, names.end());
  const auto phase_ch = static_cast<std::size_t>(it - names.begin());
  double prev = 0.0;
  for (std::size_t row = 0; row < rep.sampler.num_samples(); ++row) {
    const double phase = rep.sampler.sample_value(row, phase_ch);
    EXPECT_GE(phase, prev);
    prev = phase;
  }
  EXPECT_EQ(prev, 2.0);
}

TEST(MetricsTrace, SamplerSeriesCoversRunAndIsMonotone) {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter";
  config.n = 24;
  config.p = 4;
  config.seed = 11;

  InstrumentedRep rep;
  run_instrumented_rep(config, derive_stream(config.seed, "rep.0"), {}, rep);

  const auto& names = rep.sampler.channel_names();
  const auto idx = [&](const char* name) {
    const auto it = std::find(names.begin(), names.end(), name);
    EXPECT_NE(it, names.end()) << name;
    return static_cast<std::size_t>(it - names.begin());
  };
  const auto unmarked = idx("unmarked_fraction");
  const auto completed = idx("completed_fraction");
  const auto kmean = idx("knowledge.mean");

  ASSERT_GT(rep.sampler.num_samples(), 10u);
  EXPECT_DOUBLE_EQ(rep.sampler.sample_time(rep.sampler.num_samples() - 1),
                   rep.outcome.sim.makespan);
  double prev_unmarked = 1.0, prev_completed = -1.0, prev_k = -1.0;
  for (std::size_t row = 0; row < rep.sampler.num_samples(); ++row) {
    const double u = rep.sampler.sample_value(row, unmarked);
    const double c = rep.sampler.sample_value(row, completed);
    const double k = rep.sampler.sample_value(row, kmean);
    EXPECT_LE(u, prev_unmarked + 1e-12);  // pool only drains
    EXPECT_GE(c, prev_completed);         // completions only grow
    EXPECT_GE(k, prev_k);                 // knowledge only grows
    EXPECT_GE(u, 0.0);
    EXPECT_LE(k, 1.0);
    prev_unmarked = u;
    prev_completed = c;
    prev_k = k;
  }
  EXPECT_EQ(rep.sampler.sample_value(rep.sampler.num_samples() - 1, completed),
            1.0);
  EXPECT_EQ(prev_unmarked, 0.0);
}

TEST(MetricsTrace, ForwardsEveryHookDownstream) {
  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{8}, 2, 5);
  Platform platform({10.0, 20.0});
  RecordingTrace recording;
  MetricsRegistry registry;
  MetricsTrace metrics(&registry, nullptr, &recording, 2);
  const SimResult sim = simulate(*strategy, platform, {}, &metrics);
  metrics.flush();

  EXPECT_EQ(recording.completions().size(), 64u);
  EXPECT_EQ(recording.retirements().size(), 2u);
  EXPECT_EQ(counter_value(registry, "trace.tasks_completed"), 64u);
  EXPECT_EQ(counter_value(registry, "trace.assignments"),
            recording.assignments().size());
  EXPECT_EQ(metrics.tasks_completed(), sim.total_tasks_done);
}

TEST(MetricsTrace, FallbackFeedsCounterGaugesAndDownstream) {
  RecordingTrace recording;
  MetricsRegistry registry;
  MetricsTrace metrics(&registry, nullptr, &recording);
  EXPECT_FALSE(metrics.fell_back());
  EXPECT_EQ(metrics.fallback_time(), -1.0);

  metrics.on_fallback(1.5, 7);
  metrics.on_fallback(2.0, 3);  // a second rep in the same run
  metrics.flush();

  EXPECT_EQ(counter_value(registry, "trace.fallbacks"), 2u);
  EXPECT_TRUE(has_gauge(registry, "phase.fallback_time"));
  EXPECT_TRUE(has_gauge(registry, "phase.fallback_tasks_remaining"));
  // First-occurrence fields freeze at the first fallback, like the
  // phase-switch ones.
  EXPECT_TRUE(metrics.fell_back());
  EXPECT_EQ(metrics.fallback_time(), 1.5);
  EXPECT_EQ(metrics.fallback_tasks_remaining(), 7u);
  // Phase-switch state is untouched: the two regime changes are kept
  // apart all the way down.
  EXPECT_FALSE(metrics.phase_switched());
  ASSERT_EQ(recording.fallbacks().size(), 2u);
  EXPECT_EQ(recording.fallbacks()[0].time, 1.5);
  EXPECT_EQ(recording.fallbacks()[1].tasks_remaining, 3u);
  EXPECT_TRUE(recording.phase_switches().empty());
}

// The strategy-level observer hooks (satellite of the observability
// issue): data fetches and phase switches surface through any plain
// TraceSink attached to the engine.
struct HookCountingSink final : TraceSink {
  std::uint64_t fetches = 0;
  std::uint64_t switches = 0;
  std::uint64_t last_remaining = 0;
  double switch_time = -1.0;

  void on_assignment(std::uint32_t, double, const Assignment&) override {}
  void on_completion(std::uint32_t, double, TaskId) override {}
  void on_retire(std::uint32_t, double) override {}
  void on_data_fetch(std::uint32_t, double, const BlockRef&) override {
    ++fetches;
  }
  void on_phase_switch(double now, std::uint64_t remaining) override {
    ++switches;
    switch_time = now;
    last_remaining = remaining;
  }
};

TEST(StrategyObserverHooks, DynamicOuterReportsEveryBlockFetch) {
  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{10}, 3, 1);
  Platform platform({10.0, 15.0, 20.0});
  HookCountingSink sink;
  const SimResult sim = simulate(*strategy, platform, {}, &sink);
  EXPECT_EQ(sink.fetches, sim.total_blocks);
  EXPECT_EQ(sink.switches, 0u);
}

TEST(StrategyObserverHooks, TwoPhaseReportsSwitchOnce) {
  OuterStrategyOptions options;
  options.phase2_fraction = std::exp(-2.0);
  auto strategy = make_outer_strategy("DynamicOuter2Phases", OuterConfig{12},
                                      2, 9, options);
  Platform platform({10.0, 30.0});
  HookCountingSink sink;
  const SimResult sim = simulate(*strategy, platform, {}, &sink);
  EXPECT_EQ(sink.fetches, sim.total_blocks);
  EXPECT_EQ(sink.switches, 1u);
  EXPECT_GE(sink.switch_time, 0.0);
  EXPECT_GT(sink.last_remaining, 0u);
  // The switch happens when ~exp(-beta) of the tasks remain unserved.
  EXPECT_LE(sink.last_remaining,
            static_cast<std::uint64_t>(std::exp(-2.0) * 144.0) + 1);
}

TEST(StrategyObserverHooks, NoObserverMeansNoCost) {
  // Detached run must still work (hooks are skipped, not crashed).
  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{6}, 2, 2);
  Platform platform({10.0, 10.0});
  const SimResult sim = simulate(*strategy, platform, {}, nullptr);
  EXPECT_EQ(sim.total_tasks_done, 36u);
}

}  // namespace
}  // namespace hetsched
