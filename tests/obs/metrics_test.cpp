#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hetsched {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, BucketsByUpperBoundWithOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1
  h.observe(1.0);  // <= 1 (bounds are inclusive)
  h.observe(3.0);  // <= 4
  h.observe(9.0);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 0, 1, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
}

TEST(Histogram, BucketIndexMatchesObserve) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.5), 1u);
  EXPECT_EQ(h.bucket_index(4.0), 2u);
  EXPECT_EQ(h.bucket_index(100.0), 3u);
}

TEST(Histogram, MergeFoldsPreAggregatedShard) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.merge({2, 0, 3}, 40.0);  // two <=1 observations, three overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{3, 0, 3}));
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 40.5);
  EXPECT_THROW(h.merge({1, 2}, 0.0), std::invalid_argument);  // wrong width
}

TEST(Histogram, QuantileInterpolatesKnownDistribution) {
  // 100 observations spread uniformly over (0, 10]: ten per bucket of
  // width 1. The exact quantiles of that distribution are known, and
  // linear interpolation inside a bucket must reproduce them.
  Histogram h({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  for (int i = 1; i <= 100; ++i) h.observe(i * 0.1);
  EXPECT_NEAR(h.quantile(0.50), 5.0, 1e-12);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 1e-12);
  EXPECT_NEAR(h.quantile(0.99), 9.9, 1e-12);
  EXPECT_NEAR(h.quantile(0.05), 0.5, 1e-12);
  // q=0 still needs one observation's rank; q=1 is the last bound.
  EXPECT_NEAR(h.quantile(0.0), 0.1, 1e-12);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1e-12);
}

TEST(Histogram, QuantileFirstBucketInterpolatesFromZero) {
  Histogram h({4.0, 8.0});
  h.observe(1.0);
  h.observe(2.0);
  // Both observations land in [0, 4]; the median rank sits halfway
  // through the bucket under the Prometheus convention.
  EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-12);
}

TEST(Histogram, QuantileOverflowBucketClampsToLastBound) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(100.0);  // overflow
  EXPECT_NEAR(h.quantile(0.99), 2.0, 1e-12);
}

TEST(Histogram, QuantileEmptyIsNaNAndBadQThrows) {
  Histogram h({1.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  h.observe(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  a.inc();
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 1u);
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  // Re-request ignores (different) bounds and returns the original.
  EXPECT_EQ(&reg.histogram("h", {5.0}), &h);
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, CrossKindNameReuseThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  reg.gauge("g");
  EXPECT_THROW(reg.counter("g"), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(7.0);
  const auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zeta");
  const auto gauges = reg.gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].first, "mid");
  EXPECT_EQ(gauges[0].second, 7.0);
}

TEST(MetricsJson, WritesAllSectionsCompact) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);
  std::ostringstream out;
  write_metrics_json(out, reg);
  const std::string text = out.str();
  EXPECT_EQ(text.find("{\"type\":\"snapshot\","), 0u);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"c\":3"), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
  EXPECT_NE(text.find("\"bounds\""), std::string::npos);
  EXPECT_NE(text.find("\"counts\""), std::string::npos);
  // Non-empty histograms carry interpolated SLA percentiles.
  EXPECT_NE(text.find("\"p50\":1"), std::string::npos);
  EXPECT_NE(text.find("\"p95\":1"), std::string::npos);
  EXPECT_NE(text.find("\"p99\":1"), std::string::npos);
  // Compact (single JSON-lines record): no newline inside.
  EXPECT_EQ(text.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace hetsched
