// The flight-recorder contract: observability must be a pure reader.
// Profiler scopes, progress heartbeats, and the instrumented trace
// stack read wall clocks and engine events but never the simulated
// clock or any RNG stream — so every simulated quantity stays
// bit-identical whether observability is off, on, single-threaded, or
// running across all rep shards.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "obs/instrument.hpp"
#include "obs/progress.hpp"

namespace hetsched {
namespace {

ExperimentConfig golden_config() {
  // Mirrors the engine-golden protocol family: two-phase dynamic outer
  // on a moderate platform, enough reps to span several stat shards.
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter2Phases";
  config.n = 24;
  config.p = 6;
  config.reps = 8;
  config.seed = 42;
  return config;
}

void expect_summaries_bit_identical(const ExperimentResult& a,
                                    const ExperimentResult& b) {
  // EXPECT_EQ on doubles is exact ==: any drift, even 1 ulp, fails.
  EXPECT_EQ(a.normalized.mean, b.normalized.mean);
  EXPECT_EQ(a.normalized.stddev, b.normalized.stddev);
  EXPECT_EQ(a.normalized.min, b.normalized.min);
  EXPECT_EQ(a.normalized.max, b.normalized.max);
  EXPECT_EQ(a.makespan.mean, b.makespan.mean);
  EXPECT_EQ(a.makespan.stddev, b.makespan.stddev);
  EXPECT_EQ(a.analysis_ratio.mean, b.analysis_ratio.mean);
  EXPECT_EQ(a.finish_spread.mean, b.finish_spread.mean);
  EXPECT_EQ(a.beta, b.beta);
  ASSERT_EQ(a.reps.size(), b.reps.size());
  for (std::size_t r = 0; r < a.reps.size(); ++r) {
    EXPECT_EQ(a.reps[r].sim.makespan, b.reps[r].sim.makespan) << "rep " << r;
    EXPECT_EQ(a.reps[r].normalized, b.reps[r].normalized) << "rep " << r;
    EXPECT_EQ(a.reps[r].sim.total_blocks, b.reps[r].sim.total_blocks);
  }
}

TEST(ObservabilityDeterminism, ProfiledRunMatchesPlainRunExactly) {
  ExperimentConfig plain = golden_config();
  plain.parallelism = 1;
  const ExperimentResult reference = run_experiment(plain);
  EXPECT_FALSE(reference.profile.enabled);

  ExperimentConfig profiled = golden_config();
  profiled.parallelism = 1;
  profiled.profile = true;
  std::ostringstream progress_out;
  ProgressReporter reporter(progress_out, {});
  reporter.expect_reps(profiled.reps);
  profiled.progress = &reporter;
  const ExperimentResult observed = run_experiment(profiled);
  reporter.finish();

  EXPECT_TRUE(observed.profile.enabled);
  EXPECT_EQ(reporter.reps_done(), profiled.reps);
  expect_summaries_bit_identical(reference, observed);
}

TEST(ObservabilityDeterminism, ObservedRunIsThreadCountInvariant) {
  ExperimentConfig serial = golden_config();
  serial.parallelism = 1;
  serial.profile = true;
  std::ostringstream out1;
  ProgressReporter reporter1(out1, {});
  serial.progress = &reporter1;
  const ExperimentResult one = run_experiment(serial);

  ExperimentConfig parallel = golden_config();
  parallel.parallelism = 4;
  parallel.profile = true;
  std::ostringstream out4;
  ProgressReporter reporter4(out4, {});
  parallel.progress = &reporter4;
  const ExperimentResult four = run_experiment(parallel);

  EXPECT_EQ(four.rep_parallelism, 4u);
  expect_summaries_bit_identical(one, four);
}

TEST(ObservabilityDeterminism, InstrumentedRepMatchesBareRunSingle) {
  const ExperimentConfig config = golden_config();
  const std::uint64_t rep_seed = derive_stream(config.seed, "rep.0");
  const RepOutcome bare = run_single(config, rep_seed);

  InstrumentedRep rep;
  run_instrumented_rep(config, rep_seed, {}, rep);

  EXPECT_EQ(rep.outcome.sim.makespan, bare.sim.makespan);
  EXPECT_EQ(rep.outcome.sim.total_blocks, bare.sim.total_blocks);
  EXPECT_EQ(rep.outcome.normalized, bare.normalized);
  ASSERT_EQ(rep.outcome.sim.workers.size(), bare.sim.workers.size());
  for (std::size_t k = 0; k < bare.sim.workers.size(); ++k) {
    EXPECT_EQ(rep.outcome.sim.workers[k].busy_time,
              bare.sim.workers[k].busy_time);
    EXPECT_EQ(rep.outcome.sim.workers[k].finish_time,
              bare.sim.workers[k].finish_time);
  }
}

}  // namespace
}  // namespace hetsched
