#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/campaign.hpp"
#include "core/experiment.hpp"

namespace hetsched {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

// Injectable clock the tests step manually: reporters only see the
// wall clock through Options::clock, so throttling is exact here.
std::atomic<std::uint64_t> g_now_ns{0};
std::uint64_t manual_clock() { return g_now_ns.load(); }

TEST(ProgressReporter, ThrottlesToOneHeartbeatPerInterval) {
  g_now_ns = 0;
  std::ostringstream out;
  ProgressReporter::Options options;
  options.min_interval_sec = 1.0;
  options.clock = &manual_clock;
  ProgressReporter reporter(out, options);
  reporter.expect_reps(100);

  // 10 reps inside the first second: no heartbeat.
  for (int i = 0; i < 10; ++i) reporter.rep_done();
  EXPECT_EQ(reporter.emissions(), 0u);
  EXPECT_EQ(out.str(), "");

  // Clock passes the deadline: exactly one heartbeat for the burst.
  g_now_ns = 1'500'000'000;
  for (int i = 0; i < 10; ++i) reporter.rep_done();
  EXPECT_EQ(reporter.emissions(), 1u);
  EXPECT_EQ(count_occurrences(out.str(), "\"type\":\"heartbeat\""), 1u);

  // Next interval: one more.
  g_now_ns = 3'000'000'000;
  reporter.rep_done();
  EXPECT_EQ(reporter.emissions(), 2u);

  reporter.finish();
  EXPECT_EQ(reporter.emissions(), 3u);
  EXPECT_EQ(count_occurrences(out.str(), "\"type\":\"done\""), 1u);
  EXPECT_EQ(reporter.reps_done(), 21u);
  EXPECT_EQ(reporter.reps_total(), 100u);
}

TEST(ProgressReporter, HeartbeatRecordCarriesRateEtaAndActiveLabels) {
  g_now_ns = 0;
  std::ostringstream out;
  ProgressReporter::Options options;
  options.min_interval_sec = 1.0;
  options.clock = &manual_clock;
  ProgressReporter reporter(out, options);
  reporter.expect_reps(40);
  reporter.experiment_started("fig05/p20");
  reporter.experiment_started("fig05/p50");

  // 19 reps land before the first deadline (no emission), then the
  // clock advances and the 20th triggers the heartbeat: 20 reps in 2 s
  // => 10 reps/s, 20 remaining => eta 2 s.
  for (int i = 0; i < 19; ++i) reporter.rep_done();
  EXPECT_EQ(reporter.emissions(), 0u);
  g_now_ns = 2'000'000'000;
  reporter.rep_done();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"reps_done\":20"), std::string::npos);
  EXPECT_NE(text.find("\"reps_total\":40"), std::string::npos);
  EXPECT_NE(text.find("\"reps_per_sec\":10"), std::string::npos);
  EXPECT_NE(text.find("\"eta_sec\":2"), std::string::npos);
  EXPECT_NE(text.find("\"active\":[\"fig05/p20\",\"fig05/p50\"]"),
            std::string::npos);
  EXPECT_NE(text.find("\"rss_mib\":"), std::string::npos);

  reporter.experiment_finished("fig05/p20");
  g_now_ns = 4'000'000'000;
  reporter.rep_done();
  EXPECT_NE(out.str().find("\"active\":[\"fig05/p50\"]"), std::string::npos);
}

TEST(ProgressReporter, FinishIsIdempotentAndSelfTimed) {
  g_now_ns = 0;
  std::ostringstream out;
  ProgressReporter::Options options;
  options.clock = &manual_clock;
  ProgressReporter reporter(out, options);
  reporter.finish();
  reporter.finish();  // second call must not emit again
  EXPECT_EQ(reporter.emissions(), 1u);
  EXPECT_EQ(count_occurrences(out.str(), "\"type\":\"done\""), 1u);
  EXPECT_NE(out.str().find("\"emissions\":"), std::string::npos);
  EXPECT_NE(out.str().find("\"emit_ns\":"), std::string::npos);
}

TEST(ProgressReporter, HumanModeRewritesOneLine) {
  g_now_ns = 0;
  std::ostringstream out;
  ProgressReporter::Options options;
  options.min_interval_sec = 1.0;
  options.jsonl = false;
  options.clock = &manual_clock;
  ProgressReporter reporter(out, options);
  reporter.expect_reps(4);
  reporter.experiment_started("fig05");
  g_now_ns = 2'000'000'000;
  reporter.rep_done();
  EXPECT_NE(out.str().find("\r[hetsched] 1/4 reps"), std::string::npos);
  EXPECT_NE(out.str().find("[fig05]"), std::string::npos);
  EXPECT_EQ(out.str().find('\n'), std::string::npos);
  reporter.finish();
  EXPECT_EQ(out.str().back(), '\n');  // terminal newline, once
}

TEST(ProgressReporter, HotPathIsOneClockReadPerRep) {
  g_now_ns = 0;
  std::ostringstream out;
  std::atomic<std::uint64_t> reads{0};
  static std::atomic<std::uint64_t>* counter = nullptr;
  counter = &reads;
  ProgressReporter::Options options;
  options.min_interval_sec = 1e9;  // never emit
  options.clock = [] {
    counter->fetch_add(1);
    return std::uint64_t{0};
  };
  ProgressReporter reporter(out, options);
  const std::uint64_t after_ctor = reads.load();
  for (int i = 0; i < 100; ++i) reporter.rep_done();
  EXPECT_EQ(reads.load() - after_ctor, 100u);
}

TEST(RunExperimentProgress, CountsEveryRep) {
  std::ostringstream out;
  ProgressReporter reporter(out, {});
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter";
  config.n = 20;
  config.p = 4;
  config.reps = 6;
  config.progress = &reporter;
  reporter.expect_reps(config.reps);  // the owner registers the total
  run_experiment(config);
  reporter.finish();
  EXPECT_EQ(reporter.reps_done(), 6u);
  EXPECT_EQ(reporter.reps_total(), 6u);
  EXPECT_NE(out.str().find("\"type\":\"done\""), std::string::npos);
  EXPECT_NE(out.str().find("\"reps_done\":6"), std::string::npos);
}

TEST(CampaignProgress, RegistersAllEntriesUpFront) {
  Campaign campaign("progress-test");
  for (const char* strategy : {"RandomOuter", "DynamicOuter"}) {
    ExperimentConfig config;
    config.kernel = Kernel::kOuter;
    config.strategy = strategy;
    config.n = 16;
    config.p = 4;
    config.reps = 3;
    campaign.add(strategy, config);
  }
  std::ostringstream out;
  ProgressReporter reporter(out, {});
  campaign.run(/*parallelism=*/2, &reporter);
  reporter.finish();
  EXPECT_EQ(reporter.reps_total(), 6u);
  EXPECT_EQ(reporter.reps_done(), 6u);
  EXPECT_NE(out.str().find("\"reps_total\":6"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
