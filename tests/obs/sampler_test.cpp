#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace hetsched {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Sampler, EmitsOneRowPerElapsedDeadline) {
  TimeSeriesSampler sampler(1.0);
  double v = 10.0;
  sampler.add_channel("v", [&v] { return v; });
  sampler.advance_to(0.5);  // deadline t=0
  v = 20.0;
  sampler.advance_to(2.5);  // deadlines t=1, t=2
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].time, 0.0);
  EXPECT_EQ(samples[0].values[0], 10.0);
  EXPECT_EQ(samples[1].time, 1.0);
  EXPECT_EQ(samples[2].time, 2.0);
  EXPECT_EQ(samples[2].values[0], 20.0);
  // Idempotent: advancing to the same time adds nothing.
  sampler.advance_to(2.5);
  EXPECT_EQ(sampler.num_samples(), 3u);
}

TEST(Sampler, FinishAppendsFinalRowAtEndTime) {
  TimeSeriesSampler sampler(1.0);
  sampler.add_channel("v", [] { return 1.0; });
  sampler.advance_to(1.5);
  sampler.finish(1.75);
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 3u);  // t = 0, 1, 1.75
  EXPECT_EQ(samples.back().time, 1.75);
  // finish at an exact deadline does not duplicate the row.
  TimeSeriesSampler exact(1.0);
  exact.add_channel("v", [] { return 1.0; });
  exact.finish(2.0);
  ASSERT_EQ(exact.num_samples(), 3u);  // t = 0, 1, 2
  EXPECT_EQ(exact.sample_time(2), 2.0);
}

TEST(Sampler, NoChannelsMeansNoRowsAndNoThrow) {
  TimeSeriesSampler sampler;  // no interval either
  sampler.advance_to(100.0);
  sampler.finish(200.0);
  EXPECT_EQ(sampler.num_samples(), 0u);
}

TEST(Sampler, MissingIntervalThrowsOnceChannelsExist) {
  TimeSeriesSampler sampler;
  sampler.add_channel("v", [] { return 0.0; });
  EXPECT_THROW(sampler.advance_to(1.0), std::logic_error);
  sampler.set_interval(0.5);
  sampler.advance_to(1.0);
  EXPECT_EQ(sampler.num_samples(), 3u);  // t = 0, 0.5, 1.0
}

TEST(Sampler, MidSeriesReconfigurationThrows) {
  TimeSeriesSampler sampler(1.0);
  sampler.add_channel("v", [] { return 0.0; });
  EXPECT_THROW(sampler.add_channel("", nullptr), std::invalid_argument);
  sampler.advance_to(0.0);
  EXPECT_THROW(sampler.set_interval(2.0), std::logic_error);
  EXPECT_THROW(sampler.add_channel("w", [] { return 1.0; }),
               std::logic_error);
}

TEST(Sampler, ProbesRunInRegistrationOrder) {
  TimeSeriesSampler sampler(1.0);
  int order = 0;
  int first = -1, second = -1;
  sampler.add_channel("a", [&] { first = order++; return 0.0; });
  sampler.add_channel("b", [&] { second = order++; return 0.0; });
  sampler.advance_to(0.0);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Sampler, FlatAccessorsMatchMaterializedSamples) {
  TimeSeriesSampler sampler(0.5);
  double x = 0.0;
  sampler.add_channel("x", [&x] { return x; });
  sampler.add_channel("2x", [&x] { return 2.0 * x; });
  for (int i = 0; i < 4; ++i) {
    x = static_cast<double>(i);
    sampler.advance_to(0.5 * i);
  }
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), sampler.num_samples());
  for (std::size_t row = 0; row < samples.size(); ++row) {
    EXPECT_EQ(samples[row].time, sampler.sample_time(row));
    for (std::size_t ch = 0; ch < 2; ++ch) {
      EXPECT_EQ(samples[row].values[ch], sampler.sample_value(row, ch));
    }
  }
}

// Golden round-trip: a small deterministic series must survive the
// JSONL exporter with every time and value intact.
TEST(SamplerExport, JsonlRoundTrip) {
  TimeSeriesSampler sampler(0.25);
  double v = 0.0;
  sampler.add_channel("up", [&v] { return v; });
  sampler.add_channel("down", [&v] { return 10.0 - v; });
  for (int i = 0; i <= 4; ++i) {
    v = static_cast<double>(i);
    sampler.advance_to(0.25 * i);
  }
  std::ostringstream out;
  write_timeseries_jsonl(out, sampler);
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 1u + sampler.num_samples());

  // Meta record first (exact golden line: format changes must be
  // deliberate — downstream parsers key on these fields).
  EXPECT_EQ(lines[0],
            "{\"type\":\"meta\",\"interval\":0.25,"
            "\"channels\":[\"up\",\"down\"],\"dropped_events\":0}");

  for (std::size_t row = 0; row < sampler.num_samples(); ++row) {
    const std::string& line = lines[row + 1];
    EXPECT_EQ(line.find("{\"type\":\"sample\",\"t\":"), 0u) << line;
    // Round-trip the numbers: t then [v0, v1].
    double t = -1.0, v0 = -1.0, v1 = -1.0;
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "{\"type\":\"sample\",\"t\":%lf,\"v\":[%lf,%lf]}",
                          &t, &v0, &v1),
              3)
        << line;
    EXPECT_DOUBLE_EQ(t, sampler.sample_time(row));
    EXPECT_DOUBLE_EQ(v0, sampler.sample_value(row, 0));
    EXPECT_DOUBLE_EQ(v1, sampler.sample_value(row, 1));
  }
}

TEST(SamplerExport, CsvRoundTrip) {
  TimeSeriesSampler sampler(1.0);
  double v = 0.0;
  sampler.add_channel("v", [&v] { return v; });
  for (int i = 0; i <= 2; ++i) {
    v = static_cast<double>(i) + 0.5;
    sampler.advance_to(static_cast<double>(i));
  }
  std::ostringstream out;
  write_timeseries_csv(out, sampler);
  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 1u + sampler.num_samples());
  EXPECT_EQ(lines[0], "time,v");
  for (std::size_t row = 0; row < sampler.num_samples(); ++row) {
    double t = -1.0, val = -1.0;
    ASSERT_EQ(std::sscanf(lines[row + 1].c_str(), "%lf,%lf", &t, &val), 2)
        << lines[row + 1];
    EXPECT_DOUBLE_EQ(t, sampler.sample_time(row));
    EXPECT_DOUBLE_EQ(val, sampler.sample_value(row, 0));
  }
}

// Trace truncation is surfaced in both exporters' metadata so a series
// whose source recording hit the event cap can never masquerade as
// complete (satellite of docs/observability.md#trace-truncation).
TEST(SamplerExport, DroppedEventsSurfaceInBothFormats) {
  TimeSeriesSampler sampler(1.0);
  double v = 0.0;
  sampler.add_channel("v", [&v] { return v; });
  sampler.advance_to(1.0);

  std::ostringstream jsonl;
  write_timeseries_jsonl(jsonl, sampler, /*dropped_events=*/7);
  EXPECT_NE(jsonl.str().find("\"dropped_events\":7"), std::string::npos);

  std::ostringstream csv;
  write_timeseries_csv(csv, sampler, /*dropped_events=*/7);
  EXPECT_EQ(csv.str().find("# dropped_events=7\n"), 0u);
  // Zero drops keep the CSV comment-free (plot scripts skip no lines).
  std::ostringstream clean;
  write_timeseries_csv(clean, sampler, /*dropped_events=*/0);
  EXPECT_EQ(clean.str().find('#'), std::string::npos);
}

}  // namespace
}  // namespace hetsched
