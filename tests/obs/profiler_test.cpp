#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/json.hpp"
#include "core/experiment.hpp"

namespace hetsched {
namespace {

// Deterministic injectable clock: every read advances time by a fixed
// step, so nested-scope arithmetic has exact expected values and the
// overhead tests can count reads instead of trusting wall time.
// Atomic because the profiled rep loop reads it from worker threads.
std::atomic<std::uint64_t> g_ticks{0};
constexpr std::uint64_t kStep = 1000;
std::uint64_t counting_clock() { return (1 + g_ticks.fetch_add(1)) * kStep; }

class FakeClockGuard {
 public:
  FakeClockGuard() {
    g_ticks = 0;
    set_prof_clock_for_testing(&counting_clock);
  }
  ~FakeClockGuard() { set_prof_clock_for_testing(nullptr); }
};

TEST(ProfSite, NamesAreStable) {
  EXPECT_STREQ(to_string(ProfSite::kStrategyBuild), "strategy.build");
  EXPECT_STREQ(to_string(ProfSite::kStrategyReset), "strategy.reset");
  EXPECT_STREQ(to_string(ProfSite::kLanePrep), "lane.prep");
  EXPECT_STREQ(to_string(ProfSite::kEngineRun), "engine.run");
  EXPECT_STREQ(to_string(ProfSite::kAggregate), "aggregate");
  EXPECT_STREQ(to_string(ProfSite::kExport), "export");
  EXPECT_STREQ(to_string(ProfSite::kAnalyze), "analyze");
}

TEST(ProfScope, NullShardReadsNoClock) {
  FakeClockGuard guard;
  {
    ProfScope scope(nullptr, ProfSite::kEngineRun);
  }
  EXPECT_EQ(g_ticks, 0u);
}

TEST(ProfScope, NestedScopesSplitSelfTime) {
  FakeClockGuard guard;
  ProfShard shard;
  {
    // Clock reads (each advances by kStep): outer start = 1*kStep,
    // inner start = 2*kStep, inner end = 3*kStep, outer end = 4*kStep.
    ProfScope outer(&shard, ProfSite::kEngineRun);
    ProfScope inner(&shard, ProfSite::kAggregate);
  }
  const auto& inner = shard.sites[static_cast<std::size_t>(ProfSite::kAggregate)];
  const auto& outer = shard.sites[static_cast<std::size_t>(ProfSite::kEngineRun)];
  EXPECT_EQ(inner.ns, kStep);
  EXPECT_EQ(inner.self_ns, kStep);
  EXPECT_EQ(inner.calls, 1u);
  EXPECT_EQ(outer.ns, 3 * kStep);
  EXPECT_EQ(outer.self_ns, 2 * kStep);  // inclusive minus the nested scope
  EXPECT_EQ(outer.calls, 1u);
  EXPECT_EQ(shard.depth, 0u);
}

TEST(ProfScope, DepthOverflowFallsBackToInclusiveOnly) {
  FakeClockGuard guard;
  ProfShard shard;
  shard.depth = static_cast<std::uint32_t>(shard.stack.size());  // full
  {
    ProfScope scope(&shard, ProfSite::kExport);
  }
  const auto& site = shard.sites[static_cast<std::size_t>(ProfSite::kExport)];
  EXPECT_EQ(site.calls, 1u);
  EXPECT_EQ(site.ns, kStep);
  EXPECT_EQ(site.self_ns, site.ns);  // no child subtraction available
  EXPECT_EQ(shard.depth, shard.stack.size());
}

TEST(ProfShard, MergeFoldsSiteTotals) {
  ProfShard a, b;
  auto& sa = a.sites[static_cast<std::size_t>(ProfSite::kEngineRun)];
  auto& sb = b.sites[static_cast<std::size_t>(ProfSite::kEngineRun)];
  sa = {100, 80, 2};
  sb = {50, 50, 1};
  a.merge(b);
  EXPECT_EQ(sa.ns, 150u);
  EXPECT_EQ(sa.self_ns, 130u);
  EXPECT_EQ(sa.calls, 3u);
}

TEST(ProfileTotals, AddAccumulatesAndSums) {
  ProfShard shard;
  shard.sites[static_cast<std::size_t>(ProfSite::kEngineRun)] = {100, 90, 4};
  shard.sites[static_cast<std::size_t>(ProfSite::kAggregate)] = {10, 10, 1};
  ProfileTotals totals;
  totals.add(shard);
  totals.add(shard);
  EXPECT_EQ(totals.site(ProfSite::kEngineRun).ns, 200u);
  EXPECT_EQ(totals.site(ProfSite::kEngineRun).calls, 8u);
  EXPECT_EQ(totals.total_self_ns(), 200u);
}

TEST(ProfileJson, SkipsUncalledSitesAndNamesKeys) {
  ProfileTotals totals;
  totals.sites[static_cast<std::size_t>(ProfSite::kEngineRun)] = {123, 100, 7};
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  write_profile_json(json, totals);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"engine.run\":{\"ns\":123,\"self_ns\":100,\"calls\":7}"),
            std::string::npos);
  EXPECT_EQ(text.find("strategy.build"), std::string::npos);  // calls == 0
}

ExperimentConfig figure_protocol_config() {
  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = "DynamicOuter2Phases";
  config.n = 100;
  config.p = 20;
  config.reps = 4;
  config.seed = 42;
  return config;
}

TEST(RunExperimentProfile, DisabledByDefault) {
  ExperimentConfig config = figure_protocol_config();
  config.n = 20;
  config.p = 4;
  const ExperimentResult result = run_experiment(config);
  EXPECT_FALSE(result.profile.enabled);
  EXPECT_EQ(result.profile.site(ProfSite::kEngineRun).calls, 0u);
}

TEST(RunExperimentProfile, CountsOneEngineRunPerRep) {
  ExperimentConfig config = figure_protocol_config();
  config.n = 20;
  config.p = 4;
  config.reps = 6;
  config.profile = true;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.profile.enabled);
  EXPECT_EQ(result.profile.site(ProfSite::kEngineRun).calls, config.reps);
  // Every rep either rewinds or rebuilds its strategy.
  EXPECT_EQ(result.profile.site(ProfSite::kStrategyBuild).calls +
                result.profile.site(ProfSite::kStrategyReset).calls,
            config.reps);
  EXPECT_EQ(result.profile.site(ProfSite::kAggregate).calls, 1u);
  EXPECT_GT(result.profile.site(ProfSite::kEngineRun).ns, 0u);
  EXPECT_GE(result.profile.site(ProfSite::kEngineRun).ns,
            result.profile.site(ProfSite::kEngineRun).self_ns);
}

// The < 1% overhead gate, structural half: with a counting clock the
// profiler's cost per repetition is pinned to O(1) clock reads — the
// sites wrap whole engine runs, never individual requests, so the read
// count cannot scale with n or p.
TEST(RunExperimentProfile, CountingClockPinsReadsPerRep) {
  ExperimentConfig config = figure_protocol_config();
  config.reps = 8;
  config.profile = true;
  FakeClockGuard guard;
  run_experiment(config);
  // Per rep: reset scope (2 reads) + optional build scope (2) +
  // lane prep (2) + engine.run (2); plus one aggregate scope (2) at
  // the end.
  const std::uint64_t reads = g_ticks;
  EXPECT_LE(reads, 8u * config.reps + 2u);
  EXPECT_GE(reads, 6u * config.reps + 2u);
}

// The < 1% overhead gate, wall-clock half: reads-per-rep (pinned above)
// times the measured cost of one clock read must be under 1% of one
// unprofiled repetition of the figure protocol. Both measurements are
// generous to the profiler's disadvantage.
TEST(RunExperimentProfile, OverheadUnderOnePercentOfFigureProtocol) {
  // Cost of one clock read, amortized over a batch.
  constexpr int kReads = 20000;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (int i = 0; i < kReads; ++i) sink += prof_default_clock();
  const auto t1 = std::chrono::steady_clock::now();
  ASSERT_NE(sink, 0u);
  const double read_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kReads;

  // Cost of one unprofiled repetition.
  ExperimentConfig config = figure_protocol_config();
  const ExperimentResult result = run_experiment(config);
  const double rep_ns =
      result.wall_time_sec * 1e9 / static_cast<double>(config.reps);
  ASSERT_GT(rep_ns, 0.0);

  // 8 profiler reads + 1 progress read per rep (see progress_test.cpp).
  const double overhead = 9.0 * read_ns / rep_ns;
  EXPECT_LT(overhead, 0.01) << "read_ns=" << read_ns << " rep_ns=" << rep_ns;
}

// Shard-order merging makes the profile's *shape* independent of the
// thread count: call counts must match exactly between parallelism 1
// and 4 (the ns values are wall-clock and naturally differ).
TEST(RunExperimentProfile, CallCountsIndependentOfParallelism) {
  ExperimentConfig config = figure_protocol_config();
  config.n = 20;
  config.p = 4;
  config.reps = 8;
  config.profile = true;
  config.parallelism = 1;
  const ExperimentResult serial = run_experiment(config);
  config.parallelism = 4;
  const ExperimentResult parallel = run_experiment(config);
  for (std::size_t s = 0; s < kNumProfSites; ++s) {
    EXPECT_EQ(serial.profile.sites[s].calls, parallel.profile.sites[s].calls)
        << to_string(static_cast<ProfSite>(s));
  }
}

}  // namespace
}  // namespace hetsched
