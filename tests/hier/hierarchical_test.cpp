#include "hier/hierarchical.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "platform/speed_model.hpp"

namespace hetsched {
namespace {

std::vector<Platform> make_racks(std::size_t racks, std::size_t workers,
                                 std::uint64_t seed) {
  Rng rng(derive_stream(seed, "racks"));
  UniformIntervalSpeeds model(10.0, 100.0);
  std::vector<Platform> out;
  for (std::size_t r = 0; r < racks; ++r) {
    out.push_back(make_platform(model, workers, rng));
  }
  return out;
}

TEST(Hierarchical, DomainsTileTheSquareExactly) {
  const auto racks = make_racks(5, 4, 1);
  HierarchicalConfig config;
  config.n = 100;
  const HierarchicalResult result = run_hierarchical_outer(racks, config);
  std::uint64_t tasks = 0;
  for (const auto& rack : result.racks) tasks += rack.tasks;
  EXPECT_EQ(tasks, 10000u);
}

TEST(Hierarchical, SingleRackDegeneratesToFlat) {
  const auto racks = make_racks(1, 8, 2);
  HierarchicalConfig config;
  config.n = 60;
  const HierarchicalResult result = run_hierarchical_outer(racks, config);
  ASSERT_EQ(result.racks.size(), 1u);
  EXPECT_EQ(result.racks[0].domain.rows, 60u);
  EXPECT_EQ(result.racks[0].domain.cols, 60u);
  EXPECT_EQ(result.inter_rack_blocks, 120u);  // whole vectors, once
}

TEST(Hierarchical, InterRackVolumeNearRackLowerBound) {
  // The static split is a 7/4-approximation; on random instances it is
  // typically within a few percent of the rack-level bound.
  const auto racks = make_racks(6, 5, 3);
  HierarchicalConfig config;
  config.n = 120;
  const HierarchicalResult result = run_hierarchical_outer(racks, config);
  const double ratio = result.inter_normalized(config.n);
  EXPECT_GE(ratio, 0.95);  // discretization can dip slightly below
  EXPECT_LE(ratio, 1.75 + 0.1);
}

TEST(Hierarchical, FasterRacksGetLargerDomains) {
  std::vector<Platform> racks;
  racks.push_back(Platform(std::vector<double>(4, 10.0)));   // slow rack
  racks.push_back(Platform(std::vector<double>(4, 100.0)));  // fast rack
  HierarchicalConfig config;
  config.n = 80;
  const HierarchicalResult result = run_hierarchical_outer(racks, config);
  EXPECT_GT(result.racks[1].tasks, 5u * result.racks[0].tasks);
}

TEST(Hierarchical, RackImbalanceSmallForProportionalSplit) {
  const auto racks = make_racks(4, 6, 5);
  HierarchicalConfig config;
  config.n = 120;
  const HierarchicalResult result = run_hierarchical_outer(racks, config);
  // Static split by aggregate speed: rack finish times within ~15 %.
  EXPECT_LT(result.rack_imbalance(), 0.15);
}

TEST(Hierarchical, IntraVolumePositiveAndBounded) {
  const auto racks = make_racks(3, 5, 7);
  HierarchicalConfig config;
  config.n = 90;
  const HierarchicalResult result = run_hierarchical_outer(racks, config);
  EXPECT_GT(result.intra_rack_blocks, 0u);
  for (const auto& rack : result.racks) {
    if (rack.tasks == 0) continue;
    // A rack's workers can at most replicate the rack's whole domain
    // border each.
    EXPECT_LE(rack.intra_blocks,
              static_cast<std::uint64_t>(rack.domain.rows + rack.domain.cols) *
                  5u);
  }
}

TEST(Hierarchical, DeterministicForSeed) {
  const auto racks = make_racks(3, 4, 9);
  HierarchicalConfig config;
  config.n = 60;
  config.seed = 11;
  const HierarchicalResult a = run_hierarchical_outer(racks, config);
  const HierarchicalResult b = run_hierarchical_outer(racks, config);
  EXPECT_EQ(a.intra_rack_blocks, b.intra_rack_blocks);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Hierarchical, RejectsBadInput) {
  EXPECT_THROW(run_hierarchical_outer({}, {}), std::invalid_argument);
  const auto racks = make_racks(2, 3, 1);
  HierarchicalConfig config;
  config.n = 0;
  EXPECT_THROW(run_hierarchical_outer(racks, config), std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
