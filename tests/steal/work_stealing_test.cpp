#include "steal/work_stealing.hpp"

#include "matmul/matmul_problem.hpp"

#include <gtest/gtest.h>

#include <set>

#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

TEST(WorkStealing, ServesEveryTaskExactlyOnce) {
  WorkStealingOuterStrategy strategy(OuterConfig{12}, 3, 1);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 3; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      ASSERT_EQ(a->tasks.size(), 1u);
      EXPECT_TRUE(seen.insert(a->tasks[0]).second);
    }
  }
  EXPECT_EQ(seen.size(), 144u);
}

TEST(WorkStealing, InitialBandsAreLexicographicRows) {
  WorkStealingOuterStrategy strategy(OuterConfig{9}, 3, 2);
  // Worker 1's band starts at row 3: its first task is (3, 0).
  const auto a = strategy.on_request(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tasks[0], outer_task_id(9, 3, 0));
  // Worker 0 starts at the origin.
  const auto b = strategy.on_request(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tasks[0], outer_task_id(9, 0, 0));
}

TEST(WorkStealing, NoStealsWhenDemandIsBalanced) {
  // Round-robin service of equal bands: nobody ever runs dry before the
  // end, so no steals until the bands are exhausted.
  WorkStealingOuterStrategy strategy(OuterConfig{8}, 2, 3);
  for (int round = 0; round < 32; ++round) {
    ASSERT_TRUE(strategy.on_request(0).has_value());
    ASSERT_TRUE(strategy.on_request(1).has_value());
  }
  EXPECT_EQ(strategy.steals(), 0u);
}

TEST(WorkStealing, IdleWorkerStealsFromVictim) {
  WorkStealingOuterStrategy strategy(OuterConfig{8}, 2, 4);
  // Worker 0 consumes its entire band (32 tasks), then must steal.
  for (int t = 0; t < 32; ++t) {
    ASSERT_TRUE(strategy.on_request(0).has_value());
  }
  EXPECT_EQ(strategy.steals(), 0u);
  ASSERT_TRUE(strategy.on_request(0).has_value());
  EXPECT_EQ(strategy.steals(), 1u);
  // The thief took half of the victim's 32 remaining tasks, minus the
  // one it just served.
  EXPECT_EQ(strategy.deque_size(0), 15u);
  EXPECT_EQ(strategy.deque_size(1), 16u);
}

TEST(WorkStealing, StealsTakeVictimsTail) {
  WorkStealingOuterStrategy strategy(OuterConfig{4}, 2, 5);
  // Drain worker 0's band (rows 0-1 = 8 tasks).
  for (int t = 0; t < 8; ++t) ASSERT_TRUE(strategy.on_request(0).has_value());
  // Steal: takes the tail of worker 1's band (end of row 3), so worker
  // 1 still holds its head (3rd row start = task (2,0)).
  ASSERT_TRUE(strategy.on_request(0).has_value());
  const auto v = strategy.on_request(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->tasks[0], outer_task_id(4, 2, 0));
}

TEST(WorkStealing, SingleWorkerNeverSteals) {
  WorkStealingOuterStrategy strategy(OuterConfig{6}, 1, 6);
  while (strategy.on_request(0).has_value()) {
  }
  EXPECT_EQ(strategy.steals(), 0u);
  EXPECT_EQ(strategy.unassigned_tasks(), 0u);
}

TEST(WorkStealing, BandLocalityKeepsOwnBandCheap) {
  // A worker consuming only its own band receives its band's rows once
  // and each column once: band_rows + n blocks.
  const std::uint32_t n = 10;
  WorkStealingOuterStrategy strategy(OuterConfig{n}, 2, 7);
  std::uint64_t blocks = 0;
  for (std::uint32_t t = 0; t < (n / 2) * n; ++t) {
    const auto a = strategy.on_request(0);
    ASSERT_TRUE(a.has_value());
    blocks += a->blocks.size();
  }
  EXPECT_EQ(blocks, n / 2 + n);
  EXPECT_EQ(strategy.steals(), 0u);
}

TEST(WorkStealing, HeterogeneousPlatformTriggersSteals) {
  WorkStealingOuterStrategy strategy(OuterConfig{30}, 4, 8);
  Platform platform({10.0, 20.0, 40.0, 90.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 900u);
  EXPECT_GT(strategy.steals(), 0u);
  // Fast workers get tasks beyond their band, so they pay replication.
  EXPECT_GT(result.total_blocks, 2u * 30u);
}

TEST(WorkStealing, LoadBalancesLikeDemandDriven) {
  WorkStealingOuterStrategy strategy(OuterConfig{40}, 4, 9);
  Platform platform({10.0, 30.0, 60.0, 90.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_LT(result.finish_spread(), 0.15);
}

TEST(WorkStealing, RejectsZeroWorkers) {
  EXPECT_THROW(WorkStealingOuterStrategy(OuterConfig{4}, 0, 1),
               std::invalid_argument);
}

TEST(WorkStealing, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    WorkStealingOuterStrategy strategy(OuterConfig{20}, 3, seed);
    Platform platform({15.0, 45.0, 85.0});
    return simulate(strategy, platform).total_blocks;
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(WorkStealingMatmul, ServesEveryTaskExactlyOnce) {
  WorkStealingMatmulStrategy strategy(MatmulConfig{6}, 3, 1);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 3; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      ASSERT_EQ(a->tasks.size(), 1u);
      EXPECT_TRUE(seen.insert(a->tasks[0]).second);
    }
  }
  EXPECT_EQ(seen.size(), 216u);
}

TEST(WorkStealingMatmul, BandsAreOutputRowSlabs) {
  WorkStealingMatmulStrategy strategy(MatmulConfig{6}, 3, 2);
  // Worker 1's band starts at i = 2: first task is (2, 0, 0).
  const auto a = strategy.on_request(1);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tasks[0], matmul_task_id(6, 2, 0, 0));
}

TEST(WorkStealingMatmul, AtMostThreeBlocksPerTask) {
  WorkStealingMatmulStrategy strategy(MatmulConfig{6}, 2, 3);
  while (auto a = strategy.on_request(0)) {
    EXPECT_LE(a->blocks.size(), 3u);
  }
}

TEST(WorkStealingMatmul, FullRunOnHeterogeneousPlatform) {
  WorkStealingMatmulStrategy strategy(MatmulConfig{8}, 4, 4);
  Platform platform({10.0, 25.0, 55.0, 95.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 512u);
  EXPECT_GT(strategy.steals(), 0u);
  EXPECT_LT(result.finish_spread(), 0.2);
}

}  // namespace
}  // namespace hetsched
