#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hetsched {
namespace {

TEST(RunningStats, EmptyAccumulator) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.push(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.push(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Population variance is 4; the unbiased sample variance is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_NEAR(rs.sum(), 40.0, 1e-12);
}

TEST(RunningStats, NumericallyStableNearLargeOffset) {
  RunningStats rs;
  const double offset = 1e12;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) rs.push(x);
  EXPECT_NEAR(rs.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequentialPush) {
  RunningStats all, left, right;
  const std::vector<double> data{1.5, 2.5, -3.0, 7.25, 0.0, 4.0, 9.5};
  for (std::size_t i = 0; i < data.size(); ++i) {
    all.push(data[i]);
    (i < 3 ? left : right).push(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.push(1.0);
  a.push(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);

  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(RunningStats, ToSummaryMatchesAccessors) {
  RunningStats rs;
  for (const double x : {1.0, 2.0, 4.0}) rs.push(x);
  const Summary s = rs.to_summary();
  EXPECT_DOUBLE_EQ(s.mean, rs.mean());
  EXPECT_DOUBLE_EQ(s.stddev, rs.stddev());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(RunningStats, ToSummaryOfEmptyHasZeroMinMax) {
  const Summary s = RunningStats{}.to_summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);   // not the +inf sentinel
  EXPECT_EQ(s.max, 0.0);   // not the -inf sentinel
}

TEST(Summarize, EmptyVector) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Summarize, BasicVector) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

}  // namespace
}  // namespace hetsched
