#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace hetsched {
namespace {

TEST(SplitMix64, ProducesKnownSequenceShape) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(42);
  Rng b(43);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(rng.next_u64());
  EXPECT_GT(values.size(), 30u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsAboutHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(19);
  const std::uint64_t buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(buckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / static_cast<int>(buckets), n / 100);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(10.0, 100.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 100.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
  }
  // p = 1 - epsilon is almost surely true over a few draws.
  int trues = 0;
  for (int i = 0; i < 100; ++i) trues += rng.bernoulli(0.999999);
  EXPECT_GE(trues, 99);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

TEST(DeriveStream, SameInputsSameStream) {
  EXPECT_EQ(derive_stream(42, "alpha"), derive_stream(42, "alpha"));
}

TEST(DeriveStream, DifferentTagsDiffer) {
  EXPECT_NE(derive_stream(42, "alpha"), derive_stream(42, "beta"));
}

TEST(DeriveStream, DifferentSeedsDiffer) {
  EXPECT_NE(derive_stream(1, "alpha"), derive_stream(2, "alpha"));
}

TEST(DeriveStream, DerivedGeneratorsAreIndependent) {
  Rng a(derive_stream(5, "x"));
  Rng b(derive_stream(5, "y"));
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace hetsched
