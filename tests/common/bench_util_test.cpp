// The bench CLI plumbing is header-only; pull it in by relative path.
#include "../../bench/bench_util.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace hetsched::bench {
namespace {

TEST(BenchToU32, ConvertsValidValues) {
  const auto out = to_u32({0, 10, 4294967295ll});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 10u);
  EXPECT_EQ(out[2], 4294967295u);
}

TEST(BenchToU32, ThrowsOnNegativeWithValueInMessage) {
  try {
    to_u32({10, -3});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(BenchToU32, ThrowsBeyondUint32WithValueInMessage) {
  try {
    to_u32({std::int64_t{1} << 32});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("4294967296"), std::string::npos);
  }
}

TEST(BenchDefaults, PaperPGridConverts) {
  const auto grid = to_u32(default_p_grid());
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front(), 10u);
  EXPECT_EQ(grid.back(), 300u);
}

}  // namespace
}  // namespace hetsched::bench
