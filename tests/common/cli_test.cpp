#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(CliArgs, ParsesKeyValue) {
  const CliArgs args = parse({"prog", "--n=100", "--name=hello"});
  EXPECT_TRUE(args.has("n"));
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_EQ(args.get("name", ""), "hello");
}

TEST(CliArgs, BareFlagIsTrue) {
  const CliArgs args = parse({"prog", "--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliArgs, FallbacksWhenMissing) {
  const CliArgs args = parse({"prog"});
  EXPECT_FALSE(args.has("n"));
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get("s", "dflt"), "dflt");
  EXPECT_TRUE(args.get_bool("b", true));
}

TEST(CliArgs, ParsesDouble) {
  const CliArgs args = parse({"prog", "--beta=4.17"});
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 4.17);
}

TEST(CliArgs, ParsesBoolSpellings) {
  EXPECT_TRUE(parse({"p", "--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"p", "--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"p", "--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(parse({"p", "--x=false"}).get_bool("x", true));
}

TEST(CliArgs, ParsesIntList) {
  const CliArgs args = parse({"prog", "--p=10,50,100"});
  const auto list = args.get_int_list("p", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 10);
  EXPECT_EQ(list[1], 50);
  EXPECT_EQ(list[2], 100);
}

TEST(CliArgs, IntListFallback) {
  const CliArgs args = parse({"prog"});
  const auto list = args.get_int_list("p", {1, 2});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], 1);
}

TEST(CliArgs, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"prog", "positional"}), std::invalid_argument);
}

TEST(CliArgs, RecordsProgramName) {
  EXPECT_EQ(parse({"myprog"}).program(), "myprog");
}

}  // namespace
}  // namespace hetsched
