// The intra-rep lane team: deterministic split, barrier semantics,
// budget-aware sizing, and the campaign x rep x lane nesting guarantee
// (the lane lease can never push the process past its budget).
#include "common/lane_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace hetsched {
namespace {

// Restores the hardware-default capacity on scope exit so an override
// cannot leak into other tests.
struct BudgetOverride {
  explicit BudgetOverride(std::uint32_t capacity) {
    set_parallel_budget_capacity(capacity);
  }
  ~BudgetOverride() { set_parallel_budget_capacity(0); }
};

TEST(LaneTeam, SplitCoversRangeContiguouslyInLaneOrder) {
  for (const std::uint64_t count : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
    for (const std::uint32_t lanes : {1u, 2u, 3u, 8u, 16u}) {
      std::uint64_t expect_begin = 0;
      for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        const auto [b, e] = LaneTeam::split(count, lanes, lane);
        EXPECT_EQ(b, expect_begin) << count << "/" << lanes << "@" << lane;
        EXPECT_LE(b, e);
        expect_begin = e;
      }
      EXPECT_EQ(expect_begin, count);
    }
  }
}

TEST(LaneTeam, InertTeamRunsOnCallingThread) {
  LaneTeam team(1);
  EXPECT_EQ(team.lanes(), 1u);
  const std::thread::id me = std::this_thread::get_id();
  std::uint32_t calls = 0;
  team.run([&](std::uint32_t lane) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(std::this_thread::get_id(), me);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(team.dispatches(), 0u);  // inert calls are not dispatches
}

TEST(LaneTeam, EveryLaneRunsExactlyOncePerDispatch) {
  const BudgetOverride cap(8);
  LaneTeam team(4);
  ASSERT_EQ(team.lanes(), 4u);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::atomic<int>> hits(team.lanes());
    team.run([&](std::uint32_t lane) { hits[lane].fetch_add(1); });
    // run() is a full barrier: lane writes are visible here.
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(team.dispatches(), 100u);
}

TEST(LaneTeam, LaneZeroIsTheCallingThread) {
  const BudgetOverride cap(4);
  LaneTeam team(2);
  ASSERT_EQ(team.lanes(), 2u);
  const std::thread::id me = std::this_thread::get_id();
  team.run([&](std::uint32_t lane) {
    if (lane == 0) EXPECT_EQ(std::this_thread::get_id(), me);
    else EXPECT_NE(std::this_thread::get_id(), me);
  });
}

TEST(LaneTeam, FirstExceptionIsRethrownAfterTheBarrier) {
  const BudgetOverride cap(4);
  LaneTeam team(4);
  ASSERT_GE(team.lanes(), 2u);
  std::atomic<int> ran{0};
  EXPECT_THROW(team.run([&](std::uint32_t lane) {
    ran.fetch_add(1);
    if (lane != 0) throw std::runtime_error("lane boom");
  }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), static_cast<int>(team.lanes()));
  // The team survives an exception: the next dispatch still works.
  std::atomic<int> again{0};
  team.run([&](std::uint32_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), static_cast<int>(team.lanes()));
}

TEST(LaneTeam, SizesAgainstTheRemainingBudget) {
  const BudgetOverride cap(4);
  const ParallelLease holder(3);  // an enclosing rep loop holds 3 slots
  ASSERT_EQ(holder.granted(), 3u);
  LaneTeam team(4);  // wants 3 extras, only 1 slot remains
  EXPECT_EQ(team.lanes(), 2u);
}

TEST(LaneTeam, DegradesToSerialWhenBudgetIsDrained) {
  const BudgetOverride cap(2);
  const ParallelLease holder(2);
  ASSERT_EQ(holder.granted(), 2u);
  LaneTeam team(8);
  EXPECT_EQ(team.lanes(), 1u);
  std::uint32_t calls = 0;
  team.run([&](std::uint32_t) { ++calls; });
  EXPECT_EQ(calls, 1u);
}

TEST(LaneTeam, ReleasesItsSlotsOnDestruction) {
  const BudgetOverride cap(4);
  {
    LaneTeam team(4);
    EXPECT_EQ(team.lanes(), 4u);
    EXPECT_EQ(parallel_budget_in_use(), 3u);
  }
  EXPECT_EQ(parallel_budget_in_use(), 0u);
}

TEST(ParallelBudget, ExactLeaseRecordsUsagePastCapacity) {
  const BudgetOverride cap(2);
  const ParallelLease exact(4, /*exact=*/true);
  EXPECT_EQ(exact.granted(), 4u);  // honored as asked...
  EXPECT_EQ(parallel_budget_in_use(), 4u);  // ...and visible to others
  LaneTeam team(8);
  EXPECT_EQ(team.lanes(), 1u);  // nested teams cannot double-book
}

// Satellite 1: campaign x rep x lane nesting can never push the peak
// number of concurrently running threads past the process budget. The
// outer lease models the rep loop (exact mode, as run_experiment takes
// for --parallelism), each "rep" builds a LaneTeam and hammers it; the
// lane bodies count themselves in and out and record the high-water
// mark, which must stay within capacity.
TEST(LaneTeamStress, NestedLeasesRespectTheProcessBudget) {
  constexpr std::uint32_t kCapacity = 6;
  const BudgetOverride cap(kCapacity);
  std::atomic<std::uint32_t> active{0};
  std::atomic<std::uint32_t> peak{0};
  auto enter = [&] {
    const std::uint32_t now = active.fetch_add(1) + 1;
    std::uint32_t seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
  };
  auto leave = [&] { active.fetch_sub(1); };

  // Two rep shards in parallel (exact lease: 2 threads, recorded), each
  // running reps that spin up a wide lane team. The teams want 8 lanes
  // each; with 2 budget slots taken by the shard threads, the two teams
  // can only lease 4 extras between them.
  const ParallelLease rep_lease(2, /*exact=*/true);
  parallel_for_dynamic(2, 2, [&](std::uint64_t) {
    for (int rep = 0; rep < 20; ++rep) {
      LaneTeam team(8);
      for (int req = 0; req < 50; ++req) {
        // Lane 0 is the shard thread itself, so counting inside the
        // lane body counts every concurrently running thread once.
        team.run([&](std::uint32_t) {
          enter();
          leave();
        });
      }
    }
  });
  EXPECT_LE(peak.load(), kCapacity);
  EXPECT_EQ(parallel_budget_in_use(), 2u);  // only the rep lease remains
}

}  // namespace
}  // namespace hetsched
