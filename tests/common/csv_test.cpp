#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hetsched {
namespace {

TEST(CsvWriter, WritesHeaderImmediately) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, WritesStringRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y"});
  csv.row(std::vector<std::string>{"1", "two"});
  EXPECT_EQ(out.str(), "x,y\n1,two\n");
}

TEST(CsvWriter, WritesDoubleRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y"});
  csv.row(std::vector<double>{1.5, 2.0});
  EXPECT_EQ(out.str(), "x,y\n1.5,2\n");
}

TEST(CsvWriter, RejectsWrongArity) {
  std::ostringstream out;
  CsvWriter csv(out, {"x", "y"});
  EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}),
               std::invalid_argument);
}

TEST(CsvWriter, FormatRespectsPrecision) {
  EXPECT_EQ(CsvWriter::format(3.14159265, 3), "3.14");
  EXPECT_EQ(CsvWriter::format(100.0, 6), "100");
}

TEST(TableWriter, AlignsColumns) {
  TableWriter table({"name", "value"});
  table.row(std::vector<std::string>{"a", "1"});
  table.row(std::vector<std::string>{"longer", "2"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TableWriter, RejectsWrongArity) {
  TableWriter table({"a"});
  EXPECT_THROW(table.row(std::vector<std::string>{"1", "2"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
