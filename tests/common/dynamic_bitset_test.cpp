#include "common/dynamic_bitset.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <thread>
#include <utility>
#include <vector>

namespace hetsched {
namespace {

TEST(DynamicBitset, StartsAllClear) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.all());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.test(i));
}

TEST(DynamicBitset, ValueConstructorSetsEverything) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
  EXPECT_TRUE(bits.all());
  EXPECT_FALSE(bits.none());
}

TEST(DynamicBitset, SetAndTest) {
  DynamicBitset bits(130);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(128));
  EXPECT_EQ(bits.count(), 4u);
}

TEST(DynamicBitset, Reset) {
  DynamicBitset bits(10);
  bits.set(3);
  bits.reset(3);
  EXPECT_FALSE(bits.test(3));
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, SetIfClearReportsFirstSetOnly) {
  DynamicBitset bits(10);
  EXPECT_TRUE(bits.set_if_clear(5));
  EXPECT_FALSE(bits.set_if_clear(5));
  EXPECT_TRUE(bits.test(5));
  EXPECT_EQ(bits.count(), 1u);
}

TEST(DynamicBitset, CountAcrossWordBoundaries) {
  DynamicBitset bits(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i);
  EXPECT_EQ(bits.count(), 67u);  // ceil(200 / 3)
}

TEST(DynamicBitset, ClearResetsAllBitsKeepsSize) {
  DynamicBitset bits(77, true);
  bits.clear();
  EXPECT_EQ(bits.size(), 77u);
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, ResizeGrowClearsNewBits) {
  DynamicBitset bits(10, true);
  bits.resize(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 10u);
  EXPECT_FALSE(bits.test(50));
}

TEST(DynamicBitset, ResizeShrinkDropsTail) {
  DynamicBitset bits(100, true);
  bits.resize(10);
  EXPECT_EQ(bits.size(), 10u);
  EXPECT_EQ(bits.count(), 10u);
  bits.resize(100);
  EXPECT_EQ(bits.count(), 10u);  // bits past the old end stay cleared
}

TEST(DynamicBitset, AllOnExactWordMultiple) {
  DynamicBitset bits(128);
  for (std::size_t i = 0; i < 128; ++i) bits.set(i);
  EXPECT_TRUE(bits.all());
}

TEST(DynamicBitset, EqualityComparesContents) {
  DynamicBitset a(40);
  DynamicBitset b(40);
  a.set(17);
  EXPECT_NE(a, b);
  b.set(17);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, EmptyBitsetBehaves) {
  DynamicBitset bits(0);
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_TRUE(bits.all());  // vacuously
}

// ---------------------------------------------------- Word-level view

TEST(DynamicBitset, WordViewResolvesGenerationClears) {
  DynamicBitset bits(130);
  bits.set(0);
  bits.set(65);
  bits.set(129);
  EXPECT_EQ(bits.word_count(), 3u);
  EXPECT_EQ(bits.word(0), 1ull);
  EXPECT_EQ(bits.word(1), 2ull);
  EXPECT_EQ(bits.word(2), 2ull);
  bits.clear();  // generation bump, no word write
  EXPECT_EQ(bits.word(0), 0ull);
  EXPECT_EQ(bits.word(1), 0ull);
  bits.set(64);
  EXPECT_EQ(bits.word(1), 1ull);
  EXPECT_EQ(bits.word(0), 0ull);  // still stale, still reads zero
  EXPECT_EQ(bits.word_or_zero(2), 0ull);
  EXPECT_EQ(bits.word_or_zero(3), 0ull);  // past the array
}

TEST(DynamicBitset, ForEachSetInRangeVisitsAscending) {
  DynamicBitset bits(200);
  const std::vector<std::size_t> expect{3, 63, 64, 100, 127, 128, 199};
  for (const std::size_t pos : expect) bits.set(pos);

  std::vector<std::size_t> seen;
  bits.for_each_set_in_range(0, 200, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, expect);

  // Sub-word clipping on both ends, including mid-word boundaries.
  seen.clear();
  bits.for_each_set_in_range(4, 128, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{63, 64, 100, 127}));

  seen.clear();
  bits.for_each_set_in_range(63, 64, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{63}));

  // Degenerate and clamped ranges.
  seen.clear();
  bits.for_each_set_in_range(100, 100, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  bits.for_each_set_in_range(199, 500, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{199}));
}

TEST(ForEachMaskedPresent, AlignedWindowIntersects) {
  DynamicBitset mask(70);
  DynamicBitset absent(256);
  mask.set(0);
  mask.set(65);
  mask.set(69);
  absent.set(64 + 65);  // knocks out mask bit 65 at base 64
  std::vector<std::size_t> seen;
  for_each_masked_present(mask, absent, 64, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 69}));
}

TEST(ForEachMaskedPresent, MisalignedWindowGathersAcrossWords) {
  // base = 100 puts every mask word across a 64-bit boundary of the
  // absent set; verify against a scalar reference over random-ish bits.
  DynamicBitset mask(150);
  DynamicBitset absent(400);
  for (std::size_t pos = 0; pos < 150; pos += 7) mask.set(pos);
  for (std::size_t pos = 0; pos < 400; pos += 3) absent.set(pos);

  std::vector<std::size_t> expect;
  for (std::size_t pos = 0; pos < 150; ++pos) {
    if (mask.test(pos) && !absent.test(100 + pos)) expect.push_back(pos);
  }
  std::vector<std::size_t> seen;
  for_each_masked_present(mask, absent, 100, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, expect);
  ASSERT_FALSE(seen.empty());
}

TEST(ForEachMaskedPresent, CalleeMayRemoveVisitedBits) {
  // The frontier removes each reported id from the pool (= sets the
  // absent bit) while the scan is in flight; the contract is that the
  // word window was read beforehand, so every original hit is reported.
  DynamicBitset mask(64);
  DynamicBitset absent(64);
  for (std::size_t pos = 0; pos < 64; pos += 2) mask.set(pos);
  std::vector<std::size_t> seen;
  for_each_masked_present(mask, absent, 0, [&](std::size_t pos) {
    absent.set(pos);
    seen.push_back(pos);
  });
  EXPECT_EQ(seen.size(), 32u);
  EXPECT_EQ(absent.count(), 32u);
}

TEST(ForEachMaskedPresent, WindowPastAbsentEndReadsClear) {
  DynamicBitset mask(64);
  DynamicBitset absent(32);
  mask.set(10);
  mask.set(40);  // base 16 + 40 = 56 is past absent.size(); reads clear
  std::vector<std::size_t> seen;
  for_each_masked_present(mask, absent, 16, [&](std::size_t pos) {
    seen.push_back(pos);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{10, 40}));
}

TEST(OrShifted, MatchesPerBitSetsAcrossAlignments) {
  const std::uint64_t bits = 0x8000'0401'0000'0081ull;
  for (std::size_t base : {0ull, 1ull, 63ull, 64ull, 100ull}) {
    DynamicBitset batched(256);
    DynamicBitset scalar(256);
    batched.or_shifted(base, bits);
    for (std::size_t b = 0; b < 64; ++b) {
      if ((bits >> b) & 1) scalar.set(base + b);
    }
    EXPECT_EQ(batched, scalar) << "base " << base;
  }
}

TEST(OrShifted, PreservesExistingBitsAndSurvivesClear) {
  DynamicBitset set(128);
  set.set(3);
  set.or_shifted(60, 0b1011);  // bits 60, 61, 63 straddle the word edge
  EXPECT_TRUE(set.test(3));
  EXPECT_TRUE(set.test(60));
  EXPECT_TRUE(set.test(61));
  EXPECT_FALSE(set.test(62));
  EXPECT_TRUE(set.test(63));
  EXPECT_EQ(set.count(), 4u);
  set.clear();  // generation bump: a following OR must start from zero
  set.or_shifted(62, 0b1);
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set.test(62));
}

TEST(ForEachMaskedPresentWord, ReportsSameBitsAsPerBitKernel) {
  DynamicBitset mask(150);
  DynamicBitset absent(400);
  for (std::size_t pos = 0; pos < 150; pos += 5) mask.set(pos);
  for (std::size_t pos = 0; pos < 400; pos += 3) absent.set(pos);

  std::vector<std::size_t> expect;
  for_each_masked_present(mask, absent, 100, [&](std::size_t pos) {
    expect.push_back(pos);
  });
  std::vector<std::size_t> seen;
  for_each_masked_present_word(
      mask, absent, 100, [&](std::size_t word, std::uint64_t hits) {
        ASSERT_NE(hits, 0u);
        while (hits != 0) {
          seen.push_back((word << 6) +
                         static_cast<std::size_t>(std::countr_zero(hits)));
          hits &= hits - 1;
        }
      });
  EXPECT_EQ(seen, expect);
  ASSERT_FALSE(seen.empty());
}

TEST(ForEachMaskedPresentWord, CalleeMayRetireTheReportedWindow) {
  // The frontier ORs each hit word back into the scanned set while the
  // scan is in flight; the window is gathered first, so every original
  // hit is still reported and no bit twice.
  DynamicBitset mask(128);
  DynamicBitset absent(192);
  for (std::size_t pos = 0; pos < 128; pos += 2) mask.set(pos);
  std::size_t reported = 0;
  for_each_masked_present_word(
      mask, absent, 32, [&](std::size_t word, std::uint64_t hits) {
        absent.or_shifted(32 + (word << 6), hits);
        reported += static_cast<std::size_t>(std::popcount(hits));
      });
  EXPECT_EQ(reported, 64u);
  EXPECT_EQ(absent.count(), 64u);
}

TEST(OrMaskIntoRange, WritesMaskAtOffset) {
  DynamicBitset mask(100);
  mask.set(0);
  mask.set(37);
  mask.set(99);
  DynamicBitset dst(400);
  dst.set(1);  // pre-existing bit outside the range must survive
  or_mask_into_range(dst, mask, 150);
  EXPECT_EQ(dst.count(), 4u);
  EXPECT_TRUE(dst.test(1));
  EXPECT_TRUE(dst.test(150));
  EXPECT_TRUE(dst.test(150 + 37));
  EXPECT_TRUE(dst.test(150 + 99));
}

TEST(RelaxedAccess, MatchesPlainOpsAfterMaterialize) {
  DynamicBitset bits(300);
  bits.set(5);
  bits.set(64);
  bits.clear();
  bits.set(131);
  bits.materialize_all();
  // Materialization applied the pending clear: only 131 survives, and
  // the relaxed word view agrees with the logical one everywhere.
  for (std::size_t w = 0; w < bits.word_count(); ++w) {
    EXPECT_EQ(bits.word_or_zero_relaxed(w), bits.word_or_zero(w)) << w;
  }
  bits.set_relaxed(7);
  bits.or_shifted_relaxed(190, 0b1011u);
  DynamicBitset plain(300);
  plain.set(131);
  plain.set(7);
  plain.or_shifted(190, 0b1011u);
  EXPECT_EQ(bits, plain);
  EXPECT_EQ(bits.word_or_zero_relaxed(bits.word_count()), 0u);  // past end
}

TEST(RelaxedAccess, ConcurrentDisjointWritersProduceTheUnion) {
  // The lane contract: writers touch disjoint bit positions (possibly
  // sharing words), readers mask away anything outside their own
  // candidates. 4 threads OR stripes of one shared set.
  DynamicBitset bits(4096);
  bits.materialize_all();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bits, t] {
      for (std::size_t pos = static_cast<std::size_t>(t); pos < 4096; pos += 4) {
        bits.set_relaxed(pos);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bits.count(), 4096u);
}

TEST(ForEachMaskedPresentWordRelaxed, RangedScanMatchesFullKernel) {
  // Chunked ranged scans, concatenated in chunk order, must equal the
  // serial whole-mask kernel for aligned and misaligned windows.
  DynamicBitset mask(200);
  for (std::size_t p = 0; p < 200; p += 3) mask.set(p);
  for (const std::size_t base : {0ull, 64ull, 37ull, 129ull}) {
    DynamicBitset absent(600);
    for (std::size_t p = 0; p < 600; p += 7) absent.set(p);
    absent.materialize_all();
    std::vector<std::pair<std::size_t, std::uint64_t>> want;
    for_each_masked_present_word(
        mask, absent, base,
        [&](std::size_t w, std::uint64_t hits) { want.push_back({w, hits}); });
    std::vector<std::pair<std::size_t, std::uint64_t>> got;
    constexpr std::size_t kChunk = 2;
    for (std::size_t w0 = 0; w0 < mask.word_count(); w0 += kChunk) {
      for_each_masked_present_word_relaxed(
          mask, absent, base, w0, w0 + kChunk,
          [&](std::size_t w, std::uint64_t hits) { got.push_back({w, hits}); });
    }
    EXPECT_EQ(got, want) << "base=" << base;
  }
}

TEST(OrMaskIntoRangeRelaxed, MatchesPlainVariant) {
  DynamicBitset mask(100);
  mask.set(0);
  mask.set(63);
  mask.set(64);
  mask.set(99);
  DynamicBitset a(300), b(300);
  a.set(10);
  b.set(10);
  b.materialize_all();
  or_mask_into_range(a, mask, 150);
  or_mask_into_range_relaxed(b, mask, 150);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hetsched
