#include "common/dynamic_bitset.hpp"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(DynamicBitset, StartsAllClear) {
  DynamicBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_FALSE(bits.all());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.test(i));
}

TEST(DynamicBitset, ValueConstructorSetsEverything) {
  DynamicBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
  EXPECT_TRUE(bits.all());
  EXPECT_FALSE(bits.none());
}

TEST(DynamicBitset, SetAndTest) {
  DynamicBitset bits(130);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(128));
  EXPECT_EQ(bits.count(), 4u);
}

TEST(DynamicBitset, Reset) {
  DynamicBitset bits(10);
  bits.set(3);
  bits.reset(3);
  EXPECT_FALSE(bits.test(3));
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, SetIfClearReportsFirstSetOnly) {
  DynamicBitset bits(10);
  EXPECT_TRUE(bits.set_if_clear(5));
  EXPECT_FALSE(bits.set_if_clear(5));
  EXPECT_TRUE(bits.test(5));
  EXPECT_EQ(bits.count(), 1u);
}

TEST(DynamicBitset, CountAcrossWordBoundaries) {
  DynamicBitset bits(200);
  for (std::size_t i = 0; i < 200; i += 3) bits.set(i);
  EXPECT_EQ(bits.count(), 67u);  // ceil(200 / 3)
}

TEST(DynamicBitset, ClearResetsAllBitsKeepsSize) {
  DynamicBitset bits(77, true);
  bits.clear();
  EXPECT_EQ(bits.size(), 77u);
  EXPECT_TRUE(bits.none());
}

TEST(DynamicBitset, ResizeGrowClearsNewBits) {
  DynamicBitset bits(10, true);
  bits.resize(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.count(), 10u);
  EXPECT_FALSE(bits.test(50));
}

TEST(DynamicBitset, ResizeShrinkDropsTail) {
  DynamicBitset bits(100, true);
  bits.resize(10);
  EXPECT_EQ(bits.size(), 10u);
  EXPECT_EQ(bits.count(), 10u);
  bits.resize(100);
  EXPECT_EQ(bits.count(), 10u);  // bits past the old end stay cleared
}

TEST(DynamicBitset, AllOnExactWordMultiple) {
  DynamicBitset bits(128);
  for (std::size_t i = 0; i < 128; ++i) bits.set(i);
  EXPECT_TRUE(bits.all());
}

TEST(DynamicBitset, EqualityComparesContents) {
  DynamicBitset a(40);
  DynamicBitset b(40);
  a.set(17);
  EXPECT_NE(a, b);
  b.set(17);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, EmptyBitsetBehaves) {
  DynamicBitset bits(0);
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_TRUE(bits.none());
  EXPECT_TRUE(bits.all());  // vacuously
}

}  // namespace
}  // namespace hetsched
