#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace hetsched {
namespace {

// ---------------------------------------------------------------- Compact

TEST(CompactTaskPool, StartsFullAndDrainsInOrder) {
  CompactTaskPool pool(17);
  EXPECT_EQ(pool.size(), 17u);
  EXPECT_EQ(pool.capacity_ids(), 17u);
  for (std::uint64_t i = 0; i < 17; ++i) {
    EXPECT_TRUE(pool.contains(i));
    EXPECT_EQ(pool.pop_first(), i);
  }
  EXPECT_TRUE(pool.empty());
  EXPECT_THROW(pool.pop_first(), std::logic_error);
}

TEST(CompactTaskPool, RemoveAndContains) {
  CompactTaskPool pool(10);
  EXPECT_TRUE(pool.remove(4));
  EXPECT_FALSE(pool.remove(4));  // already gone
  EXPECT_FALSE(pool.contains(4));
  EXPECT_FALSE(pool.contains(10));  // beyond capacity
  EXPECT_EQ(pool.size(), 9u);
  EXPECT_EQ(pool.pop_first(), 0u);
  pool.remove(1);
  pool.remove(2);
  EXPECT_EQ(pool.pop_first(), 3u);  // skips the removed run
  EXPECT_EQ(pool.pop_first(), 5u);  // and the hole at 4
}

TEST(CompactTaskPool, InsertRewindsPopFirst) {
  CompactTaskPool pool(10);
  for (int i = 0; i < 5; ++i) pool.pop_first();  // cursor now at 5
  EXPECT_TRUE(pool.insert(2));
  EXPECT_FALSE(pool.insert(2));  // already present
  EXPECT_THROW(pool.insert(10), std::out_of_range);
  EXPECT_EQ(pool.pop_first(), 2u);  // rewound past the cursor
  EXPECT_EQ(pool.pop_first(), 5u);
}

TEST(CompactTaskPool, PopRandomDrainsEveryIdExactlyOnce) {
  CompactTaskPool pool(257);
  Rng rng(123);
  std::set<std::uint64_t> seen;
  while (!pool.empty()) {
    const std::uint64_t id = pool.pop_random(rng);
    EXPECT_LT(id, 257u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_THROW(pool.pop_random(rng), std::logic_error);
}

TEST(CompactTaskPool, CompactionTriggersAtThresholdAndStaysCorrect) {
  // capacity = 4 * divisor, so compaction arms once size <= 4.
  const std::uint64_t cap = 4 * CompactTaskPool::kCompactDivisor;
  CompactTaskPool pool(cap);
  for (std::uint64_t id = 0; id + 5 < cap; ++id) pool.remove(id);
  ASSERT_EQ(pool.size(), 5u);
  EXPECT_FALSE(pool.compacted());
  Rng rng(7);
  std::uint64_t id = pool.pop_random(rng);  // size 5: still rejection
  EXPECT_GE(id, cap - 5);
  EXPECT_FALSE(pool.compacted());
  id = pool.pop_random(rng);  // size 4 <= cap/divisor: compacts first
  EXPECT_TRUE(pool.compacted());
  EXPECT_GE(id, cap - 5);
  std::set<std::uint64_t> rest;
  while (!pool.empty()) rest.insert(pool.pop_random(rng));
  EXPECT_EQ(rest.size(), 3u);
  for (const std::uint64_t r : rest) EXPECT_GE(r, cap - 5);
}

TEST(CompactTaskPool, TinyCapacityNeverCompactsButDrains) {
  // capacity < divisor: the compaction condition never holds for a
  // non-empty pool; rejection sampling must still drain it.
  CompactTaskPool pool(10);
  Rng rng(99);
  std::set<std::uint64_t> seen;
  while (!pool.empty()) seen.insert(pool.pop_random(rng));
  EXPECT_FALSE(pool.compacted());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(CompactTaskPool, MixedOpsAfterCompaction) {
  const std::uint64_t cap = 2 * CompactTaskPool::kCompactDivisor;
  CompactTaskPool pool(cap);
  for (std::uint64_t id = 2; id < cap; ++id) pool.remove(id);
  Rng rng(5);
  pool.pop_random(rng);  // size 2 <= cap/128: compacts
  ASSERT_TRUE(pool.compacted());
  // Requeue after compaction: insert lands in the tail and in the
  // bitset; remove() invalidates a tail entry that must be pruned.
  EXPECT_TRUE(pool.insert(50));
  EXPECT_TRUE(pool.contains(50));
  EXPECT_TRUE(pool.remove(50));
  std::set<std::uint64_t> rest;
  while (!pool.empty()) rest.insert(pool.pop_random(rng));
  EXPECT_EQ(rest.size(), 1u);
  EXPECT_TRUE(rest.count(0) || rest.count(1));
}

TEST(CompactTaskPool, PopFirstAfterCompaction) {
  const std::uint64_t cap = 2 * CompactTaskPool::kCompactDivisor;
  CompactTaskPool pool(cap);
  for (std::uint64_t id = 0; id + 2 < cap; ++id) pool.remove(id);
  Rng rng(5);
  pool.pop_random(rng);  // compacts; one of the last two ids remains
  ASSERT_TRUE(pool.compacted());
  const std::uint64_t last = pool.pop_first();
  EXPECT_GE(last, cap - 2);
  EXPECT_TRUE(pool.empty());
}

TEST(CompactTaskPool, ResetRestoresFullPool) {
  CompactTaskPool pool(300);
  Rng rng(11);
  while (!pool.empty()) pool.pop_random(rng);
  EXPECT_TRUE(pool.compacted());
  pool.reset();
  EXPECT_EQ(pool.size(), 300u);
  EXPECT_FALSE(pool.compacted());
  EXPECT_EQ(pool.pop_first(), 0u);
  std::set<std::uint64_t> seen{0};
  while (!pool.empty()) seen.insert(pool.pop_random(rng));
  EXPECT_EQ(seen.size(), 300u);
}

TEST(CompactTaskPool, PopRandomIsRoughlyUniform) {
  // First draw from a fresh 8-id pool, repeated: each id should get
  // ~1/8 of the draws. Loose 3x bounds — this is a sanity check that
  // rejection sampling is not biased, not a statistical test.
  constexpr int kTrials = 4000;
  std::vector<int> hits(8, 0);
  Rng rng(2024);
  CompactTaskPool pool(8);
  for (int t = 0; t < kTrials; ++t) {
    ++hits[pool.pop_random(rng)];
    pool.reset();
  }
  for (int id = 0; id < 8; ++id) {
    EXPECT_GT(hits[id], kTrials / 24) << "id " << id;
    EXPECT_LT(hits[id], kTrials / 3) << "id " << id;
  }
}

TEST(CompactTaskPool, IdsListsSurvivorsAscending) {
  CompactTaskPool pool(12);
  pool.remove(0);
  pool.remove(7);
  pool.remove(11);
  const std::vector<std::uint64_t> expect{1, 2, 3, 4, 5, 6, 8, 9, 10};
  EXPECT_EQ(pool.ids(), expect);
}

// Pinned golden: the exact pop sequence for a fixed seed and op script,
// crossing the compaction boundary. Guards the compact pool's RNG
// consumption and compaction order the way the engine goldens guard the
// dense path. Regenerate only for an intentional format break:
//   tools breaking this MUST bump docs/performance.md's determinism note.
TEST(CompactTaskPool, GoldenPopSequence) {
  const std::uint64_t cap = 2 * CompactTaskPool::kCompactDivisor;  // 256
  CompactTaskPool pool(cap);
  Rng rng(derive_stream(123, "task_pool.golden"));
  // Script: thin the pool to 6 survivors deterministically, then pop
  // everything randomly (compaction fires once size reaches 4).
  for (std::uint64_t id = 0; id < cap; ++id) {
    if (id % 43 != 0) pool.remove(id);
  }
  ASSERT_EQ(pool.size(), 6u);
  std::vector<std::uint64_t> seq;
  while (!pool.empty()) seq.push_back(pool.pop_random(rng));
  const std::vector<std::uint64_t> expect{215, 86, 172, 0, 129, 43};
  EXPECT_EQ(seq, expect);
  EXPECT_TRUE(pool.compacted());
}

// ---------------------------------------------------------------- Facade

TEST(TaskPool, SmallCapacityUsesDenseLayout) {
  TaskPool pool(1000);
  EXPECT_FALSE(pool.uses_compact_layout());
  EXPECT_EQ(pool.size(), 1000u);
}

TEST(TaskPool, ThresholdCapacityUsesCompactLayout) {
  TaskPool pool(TaskPool::kCompactThreshold);
  EXPECT_TRUE(pool.uses_compact_layout());
  EXPECT_EQ(pool.size(), TaskPool::kCompactThreshold);
  EXPECT_EQ(pool.pop_first(), 0u);
  Rng rng(1);
  const std::uint64_t id = pool.pop_random(rng);
  EXPECT_GT(id, 0u);
  EXPECT_LT(id, TaskPool::kCompactThreshold);
  EXPECT_FALSE(pool.contains(id));
  EXPECT_TRUE(pool.insert(id));
  EXPECT_TRUE(pool.contains(id));
}

TEST(TaskPool, DenseLayoutMatchesRawSwapRemovePoolRng) {
  // The facade must consume the RNG exactly like the bare dense pool —
  // this is the bit-identity contract of the engine goldens.
  TaskPool facade(64);
  SwapRemovePool raw(64);
  Rng rng_a(777), rng_b(777);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(facade.pop_random(rng_a), raw.pop_random(rng_b));
  }
}

TEST(TaskPool, ResetWorksInBothLayouts) {
  Rng rng(3);
  TaskPool small(100);
  while (!small.empty()) small.pop_random(rng);
  small.reset();
  EXPECT_EQ(small.size(), 100u);
  EXPECT_EQ(small.pop_first(), 0u);

  TaskPool big(TaskPool::kCompactThreshold);
  big.pop_first();
  big.pop_random(rng);
  big.reset();
  EXPECT_EQ(big.size(), TaskPool::kCompactThreshold);
  EXPECT_EQ(big.pop_first(), 0u);
}

}  // namespace
}  // namespace hetsched
