#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace hetsched {
namespace {

// ---------------------------------------------------------------- Compact

TEST(CompactTaskPool, StartsFullAndDrainsInOrder) {
  CompactTaskPool pool(17);
  EXPECT_EQ(pool.size(), 17u);
  EXPECT_EQ(pool.capacity_ids(), 17u);
  for (std::uint64_t i = 0; i < 17; ++i) {
    EXPECT_TRUE(pool.contains(i));
    EXPECT_EQ(pool.pop_first(), i);
  }
  EXPECT_TRUE(pool.empty());
  EXPECT_THROW(pool.pop_first(), std::logic_error);
}

TEST(CompactTaskPool, RemoveAndContains) {
  CompactTaskPool pool(10);
  EXPECT_TRUE(pool.remove(4));
  EXPECT_FALSE(pool.remove(4));  // already gone
  EXPECT_FALSE(pool.contains(4));
  EXPECT_FALSE(pool.contains(10));  // beyond capacity
  EXPECT_EQ(pool.size(), 9u);
  EXPECT_EQ(pool.pop_first(), 0u);
  pool.remove(1);
  pool.remove(2);
  EXPECT_EQ(pool.pop_first(), 3u);  // skips the removed run
  EXPECT_EQ(pool.pop_first(), 5u);  // and the hole at 4
}

TEST(CompactTaskPool, InsertRewindsPopFirst) {
  CompactTaskPool pool(10);
  for (int i = 0; i < 5; ++i) pool.pop_first();  // cursor now at 5
  EXPECT_TRUE(pool.insert(2));
  EXPECT_FALSE(pool.insert(2));  // already present
  EXPECT_THROW(pool.insert(10), std::out_of_range);
  EXPECT_EQ(pool.pop_first(), 2u);  // rewound past the cursor
  EXPECT_EQ(pool.pop_first(), 5u);
}

TEST(CompactTaskPool, PopRandomDrainsEveryIdExactlyOnce) {
  CompactTaskPool pool(257);
  Rng rng(123);
  std::set<std::uint64_t> seen;
  while (!pool.empty()) {
    const std::uint64_t id = pool.pop_random(rng);
    EXPECT_LT(id, 257u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_THROW(pool.pop_random(rng), std::logic_error);
}

TEST(CompactTaskPool, CompactionTriggersAtThresholdAndStaysCorrect) {
  // capacity = 4 * divisor, so compaction arms once size <= 4.
  const std::uint64_t cap = 4 * CompactTaskPool::kCompactDivisor;
  CompactTaskPool pool(cap);
  for (std::uint64_t id = 0; id + 5 < cap; ++id) pool.remove(id);
  ASSERT_EQ(pool.size(), 5u);
  EXPECT_FALSE(pool.compacted());
  Rng rng(7);
  std::uint64_t id = pool.pop_random(rng);  // size 5: still rejection
  EXPECT_GE(id, cap - 5);
  EXPECT_FALSE(pool.compacted());
  id = pool.pop_random(rng);  // size 4 <= cap/divisor: compacts first
  EXPECT_TRUE(pool.compacted());
  EXPECT_GE(id, cap - 5);
  std::set<std::uint64_t> rest;
  while (!pool.empty()) rest.insert(pool.pop_random(rng));
  EXPECT_EQ(rest.size(), 3u);
  for (const std::uint64_t r : rest) EXPECT_GE(r, cap - 5);
}

TEST(CompactTaskPool, TinyCapacityNeverCompactsButDrains) {
  // capacity < divisor: the compaction condition never holds for a
  // non-empty pool; rejection sampling must still drain it.
  CompactTaskPool pool(10);
  Rng rng(99);
  std::set<std::uint64_t> seen;
  while (!pool.empty()) seen.insert(pool.pop_random(rng));
  EXPECT_FALSE(pool.compacted());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(CompactTaskPool, MixedOpsAfterCompaction) {
  const std::uint64_t cap = 2 * CompactTaskPool::kCompactDivisor;
  CompactTaskPool pool(cap);
  for (std::uint64_t id = 2; id < cap; ++id) pool.remove(id);
  Rng rng(5);
  pool.pop_random(rng);  // size 2 <= cap/128: compacts
  ASSERT_TRUE(pool.compacted());
  // Requeue after compaction: insert lands in the tail and in the
  // bitset; remove() invalidates a tail entry that must be pruned.
  EXPECT_TRUE(pool.insert(50));
  EXPECT_TRUE(pool.contains(50));
  EXPECT_TRUE(pool.remove(50));
  std::set<std::uint64_t> rest;
  while (!pool.empty()) rest.insert(pool.pop_random(rng));
  EXPECT_EQ(rest.size(), 1u);
  EXPECT_TRUE(rest.count(0) || rest.count(1));
}

TEST(CompactTaskPool, PopFirstAfterCompaction) {
  const std::uint64_t cap = 2 * CompactTaskPool::kCompactDivisor;
  CompactTaskPool pool(cap);
  for (std::uint64_t id = 0; id + 2 < cap; ++id) pool.remove(id);
  Rng rng(5);
  pool.pop_random(rng);  // compacts; one of the last two ids remains
  ASSERT_TRUE(pool.compacted());
  const std::uint64_t last = pool.pop_first();
  EXPECT_GE(last, cap - 2);
  EXPECT_TRUE(pool.empty());
}

TEST(CompactTaskPool, ResetRestoresFullPool) {
  CompactTaskPool pool(300);
  Rng rng(11);
  while (!pool.empty()) pool.pop_random(rng);
  EXPECT_TRUE(pool.compacted());
  pool.reset();
  EXPECT_EQ(pool.size(), 300u);
  EXPECT_FALSE(pool.compacted());
  EXPECT_EQ(pool.pop_first(), 0u);
  std::set<std::uint64_t> seen{0};
  while (!pool.empty()) seen.insert(pool.pop_random(rng));
  EXPECT_EQ(seen.size(), 300u);
}

TEST(CompactTaskPool, PopRandomIsRoughlyUniform) {
  // First draw from a fresh 8-id pool, repeated: each id should get
  // ~1/8 of the draws. Loose 3x bounds — this is a sanity check that
  // rejection sampling is not biased, not a statistical test.
  constexpr int kTrials = 4000;
  std::vector<int> hits(8, 0);
  Rng rng(2024);
  CompactTaskPool pool(8);
  for (int t = 0; t < kTrials; ++t) {
    ++hits[pool.pop_random(rng)];
    pool.reset();
  }
  for (int id = 0; id < 8; ++id) {
    EXPECT_GT(hits[id], kTrials / 24) << "id " << id;
    EXPECT_LT(hits[id], kTrials / 3) << "id " << id;
  }
}

TEST(CompactTaskPool, IdsListsSurvivorsAscending) {
  CompactTaskPool pool(12);
  pool.remove(0);
  pool.remove(7);
  pool.remove(11);
  const std::vector<std::uint64_t> expect{1, 2, 3, 4, 5, 6, 8, 9, 10};
  EXPECT_EQ(pool.ids(), expect);
}

// Pinned golden: the exact pop sequence for a fixed seed and op script,
// crossing the compaction boundary. Guards the compact pool's RNG
// consumption and compaction order the way the engine goldens guard the
// dense path. Regenerate only for an intentional format break:
//   tools breaking this MUST bump docs/performance.md's determinism note.
TEST(CompactTaskPool, GoldenPopSequence) {
  const std::uint64_t cap = 2 * CompactTaskPool::kCompactDivisor;  // 256
  CompactTaskPool pool(cap);
  Rng rng(derive_stream(123, "task_pool.golden"));
  // Script: thin the pool to 6 survivors deterministically, then pop
  // everything randomly (compaction fires once size reaches 4).
  for (std::uint64_t id = 0; id < cap; ++id) {
    if (id % 43 != 0) pool.remove(id);
  }
  ASSERT_EQ(pool.size(), 6u);
  std::vector<std::uint64_t> seq;
  while (!pool.empty()) seq.push_back(pool.pop_random(rng));
  const std::vector<std::uint64_t> expect{215, 86, 172, 0, 129, 43};
  EXPECT_EQ(seq, expect);
  EXPECT_TRUE(pool.compacted());
}

// ---------------------------------------------------------------- Facade

TEST(TaskPool, SmallCapacityUsesDenseLayout) {
  TaskPool pool(1000);
  EXPECT_FALSE(pool.uses_compact_layout());
  EXPECT_EQ(pool.size(), 1000u);
}

TEST(TaskPool, ThresholdCapacityUsesCompactLayout) {
  TaskPool pool(TaskPool::kCompactThreshold);
  EXPECT_TRUE(pool.uses_compact_layout());
  EXPECT_EQ(pool.size(), TaskPool::kCompactThreshold);
  EXPECT_EQ(pool.pop_first(), 0u);
  Rng rng(1);
  const std::uint64_t id = pool.pop_random(rng);
  EXPECT_GT(id, 0u);
  EXPECT_LT(id, TaskPool::kCompactThreshold);
  EXPECT_FALSE(pool.contains(id));
  EXPECT_TRUE(pool.insert(id));
  EXPECT_TRUE(pool.contains(id));
}

TEST(TaskPool, DenseLayoutMatchesRawSwapRemovePoolRng) {
  // The facade must consume the RNG exactly like the bare dense pool —
  // this is the bit-identity contract of the engine goldens.
  TaskPool facade(64);
  SwapRemovePool raw(64);
  Rng rng_a(777), rng_b(777);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(facade.pop_random(rng_a), raw.pop_random(rng_b));
  }
}

// -------------------------------------------------- Removed-set view

// The frontier scans of the dynamic strategies read the pool as a
// removed-id bitset. The compact layout has that set natively; the
// dense layout mirrors it only when opted in at construction.
TEST(TaskPool, RemovedViewTracksDenseLayoutOps) {
  TaskPool pool(100, /*presence_view=*/true);
  EXPECT_TRUE(pool.has_presence_view());
  const DynamicBitset& removed = pool.removed_view();
  EXPECT_TRUE(removed.none());

  Rng rng(5);
  ASSERT_TRUE(pool.remove(42));
  EXPECT_TRUE(removed.test(42));
  const std::uint64_t popped = pool.pop_random(rng);
  EXPECT_TRUE(removed.test(popped));
  const std::uint64_t first = pool.pop_first();
  EXPECT_TRUE(removed.test(first));
  ASSERT_TRUE(pool.insert(42));  // requeue resurfaces in the view
  EXPECT_FALSE(removed.test(42));

  // Exactness: the view must agree with contains() for every id.
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(removed.test(id), !pool.contains(id)) << id;
  }

  pool.reset();
  EXPECT_TRUE(removed.none());
  EXPECT_EQ(pool.size(), 100u);
}

TEST(TaskPool, RemovedViewWithoutOptInIsAbsentOnDenseLayout) {
  TaskPool pool(100);
  EXPECT_FALSE(pool.has_presence_view());
}

TEST(TaskPool, RemovedViewTracksCompactLayout) {
  // The compact layout keeps the removed-set anyway, so the view is
  // available regardless of the opt-in flag.
  TaskPool pool(TaskPool::kCompactThreshold);
  EXPECT_TRUE(pool.has_presence_view());
  const DynamicBitset& removed = pool.removed_view();
  ASSERT_TRUE(pool.remove(123456));
  EXPECT_TRUE(removed.test(123456));
  Rng rng(9);
  const std::uint64_t popped = pool.pop_random(rng);
  EXPECT_TRUE(removed.test(popped));
  ASSERT_TRUE(pool.insert(123456));
  EXPECT_FALSE(removed.test(123456));
  pool.reset();
  EXPECT_FALSE(removed.test(popped));
}

TEST(TaskPool, LazyDenseAgreesWithEagerThroughMixedOps) {
  // Lazy-dense mode defers the swap-remove index; the observable set
  // (size / contains / removed_view / ids) must stay identical to the
  // eager presence-view pool through removes, inserts and a reset.
  TaskPool lazy(200, /*presence_view=*/true, /*lazy_dense=*/true);
  TaskPool eager(200, /*presence_view=*/true);
  for (std::uint64_t id = 0; id < 200; id += 3) {
    ASSERT_EQ(lazy.remove(id), eager.remove(id)) << id;
  }
  EXPECT_FALSE(lazy.remove(3));   // double remove is a no-op
  EXPECT_FALSE(eager.remove(3));
  ASSERT_TRUE(lazy.insert(3));
  ASSERT_TRUE(eager.insert(3));
  EXPECT_FALSE(lazy.insert(3));   // double insert likewise
  EXPECT_FALSE(eager.insert(3));
  EXPECT_THROW(lazy.insert(200), std::out_of_range);
  EXPECT_EQ(lazy.size(), eager.size());
  for (std::uint64_t id = 0; id < 200; ++id) {
    ASSERT_EQ(lazy.contains(id), eager.contains(id)) << id;
    ASSERT_EQ(lazy.removed_view().test(id), eager.removed_view().test(id));
  }
  auto eager_ids = eager.ids();  // dense order is unspecified; lazy is
  std::sort(eager_ids.begin(), eager_ids.end());  // ascending
  EXPECT_EQ(lazy.ids(), eager_ids);
  lazy.reset();
  eager.reset();
  EXPECT_EQ(lazy.size(), 200u);
  EXPECT_TRUE(lazy.removed_view().none());
}

TEST(TaskPool, LazyDensePopsDrawFromAscendingRebuild) {
  // After a lazy remove stretch, the first pop reconciles the index in
  // one ascending pass: pop_first yields the smallest survivor and
  // pop_random consumes exactly one draw per pop (the bit-identity
  // contract; the *values* come from the ascending layout).
  TaskPool pool(100, /*presence_view=*/true, /*lazy_dense=*/true);
  for (std::uint64_t id = 0; id < 50; ++id) ASSERT_TRUE(pool.remove(id));
  EXPECT_EQ(pool.pop_first(), 50u);
  Rng rng_pool(42), rng_ref(42);
  DynamicBitset popped(100);
  std::uint64_t remaining = 49;
  while (!pool.empty()) {
    // Reference: the rebuild laid survivors out ascending, so a pop at
    // position p takes the p-th smallest remaining id and back-fills
    // with the largest (swap-remove).
    const std::uint64_t id = pool.pop_random(rng_pool);
    (void)rng_ref.next_below(remaining--);
    ASSERT_GE(id, 51u);
    ASSERT_FALSE(popped.test(id)) << "double pop of " << id;
    popped.set(id);
  }
  EXPECT_EQ(popped.count(), 49u);
  // Same number of draws consumed: the next value matches.
  EXPECT_EQ(rng_pool.next_u64(), rng_ref.next_u64());
}

TEST(TaskPool, RemovePresentBitsMatchesPerIdRemovalInEveryLayout) {
  const std::uint64_t base = 60;  // straddles a word boundary
  const std::uint64_t bits = 0x8000'0000'0420'0081ull;
  auto check = [&](TaskPool& batched, TaskPool& scalar) {
    ASSERT_EQ(batched.size(), scalar.size());
    batched.remove_present_bits(base, bits);
    for (std::uint64_t b = 0; b < 64; ++b) {
      if ((bits >> b) & 1) {
        ASSERT_TRUE(scalar.remove(base + b)) << b;
      }
    }
    ASSERT_EQ(batched.size(), scalar.size());
    for (std::uint64_t id = 0; id < 200; ++id) {
      ASSERT_EQ(batched.contains(id), scalar.contains(id)) << id;
    }
  };
  TaskPool lazy_a(200, true, true), lazy_b(200, true, true);
  check(lazy_a, lazy_b);
  TaskPool eager_a(200, true), eager_b(200, true);
  check(eager_a, eager_b);
  TaskPool plain_a(200), plain_b(200);  // no presence view: per-id path
  check(plain_a, plain_b);
  TaskPool compact_a(TaskPool::kCompactThreshold);
  TaskPool compact_b(TaskPool::kCompactThreshold);
  ASSERT_TRUE(compact_a.uses_compact_layout());
  compact_a.remove_present_bits(base, bits);
  for (std::uint64_t b = 0; b < 64; ++b) {
    if ((bits >> b) & 1) {
      ASSERT_TRUE(compact_b.remove(base + b)) << b;
    }
  }
  EXPECT_EQ(compact_a.size(), compact_b.size());
  for (std::uint64_t id = 0; id < 200; ++id) {
    ASSERT_EQ(compact_a.contains(id), compact_b.contains(id)) << id;
  }
}

TEST(TaskPool, ResetWorksInBothLayouts) {
  Rng rng(3);
  TaskPool small(100);
  while (!small.empty()) small.pop_random(rng);
  small.reset();
  EXPECT_EQ(small.size(), 100u);
  EXPECT_EQ(small.pop_first(), 0u);

  TaskPool big(TaskPool::kCompactThreshold);
  big.pop_first();
  big.pop_random(rng);
  big.reset();
  EXPECT_EQ(big.size(), TaskPool::kCompactThreshold);
  EXPECT_EQ(big.pop_first(), 0u);
}

TEST(TaskPool, LaneRemovalPhaseMatchesSerialBatchRemoval) {
  // The lane protocol: materialize_presence once, any number of
  // relaxed batch removals (size deferred), one commit. The result
  // must equal the serial remove_present_bits path exactly.
  TaskPool lane(1000, /*presence_view=*/true, /*lazy_dense=*/true);
  TaskPool serial(1000, /*presence_view=*/true, /*lazy_dense=*/true);
  ASSERT_TRUE(lane.supports_lane_removals());
  lane.materialize_presence();
  std::uint64_t taken = 0;
  for (const std::uint64_t base : {0ull, 64ull, 100ull, 897ull}) {
    const std::uint64_t bits = 0b1010110111ull;
    lane.remove_present_bits_relaxed(base, bits);
    serial.remove_present_bits(base, bits);
    taken += static_cast<std::uint64_t>(std::popcount(bits));
  }
  lane.commit_lane_removals(taken);
  EXPECT_EQ(lane.size(), serial.size());
  for (std::uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(lane.contains(id), serial.contains(id)) << id;
  }
  // Drains agree afterwards too (the rebuild sees identical bits).
  Rng a(1), b(1);
  while (!serial.empty()) {
    EXPECT_EQ(lane.pop_random(a), serial.pop_random(b));
  }
  EXPECT_TRUE(lane.empty());
}

TEST(TaskPool, CommitLaneRemovalsOfZeroIsANoOp) {
  TaskPool pool(100, /*presence_view=*/true, /*lazy_dense=*/true);
  pool.materialize_presence();
  pool.commit_lane_removals(0);
  EXPECT_EQ(pool.size(), 100u);
}

}  // namespace
}  // namespace hetsched
