#include "common/swap_remove_pool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace hetsched {
namespace {

TEST(SwapRemovePool, StartsFull) {
  SwapRemovePool pool(10);
  EXPECT_EQ(pool.size(), 10u);
  EXPECT_FALSE(pool.empty());
  for (std::uint64_t id = 0; id < 10; ++id) EXPECT_TRUE(pool.contains(id));
}

TEST(SwapRemovePool, EmptyPool) {
  SwapRemovePool pool(0);
  EXPECT_TRUE(pool.empty());
  EXPECT_FALSE(pool.contains(0));
}

TEST(SwapRemovePool, RemoveRemoves) {
  SwapRemovePool pool(5);
  EXPECT_TRUE(pool.remove(3));
  EXPECT_FALSE(pool.contains(3));
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_FALSE(pool.remove(3));  // second removal is a no-op
  EXPECT_EQ(pool.size(), 4u);
}

TEST(SwapRemovePool, RemoveOutOfRangeIsFalse) {
  SwapRemovePool pool(5);
  EXPECT_FALSE(pool.remove(99));
}

TEST(SwapRemovePool, PopRandomDrainsExactlyOnce) {
  SwapRemovePool pool(100);
  Rng rng(1);
  std::set<std::uint64_t> seen;
  while (!pool.empty()) {
    const std::uint64_t id = pool.pop_random(rng);
    EXPECT_LT(id, 100u);
    EXPECT_TRUE(seen.insert(id).second) << "id " << id << " popped twice";
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SwapRemovePool, PopRandomIsRoughlyUniformOnFirstDraw) {
  // Distribution check: the first pop from a 4-element pool should hit
  // each element about a quarter of the time across seeds.
  std::vector<int> counts(4, 0);
  for (std::uint64_t seed = 0; seed < 4000; ++seed) {
    SwapRemovePool pool(4);
    Rng rng(seed);
    ++counts[pool.pop_random(rng)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(SwapRemovePool, PopFirstIsLexicographic) {
  SwapRemovePool pool(5);
  for (std::uint64_t expect = 0; expect < 5; ++expect) {
    EXPECT_EQ(pool.pop_first(), expect);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(SwapRemovePool, PopFirstSkipsRemoved) {
  SwapRemovePool pool(6);
  pool.remove(0);
  pool.remove(2);
  EXPECT_EQ(pool.pop_first(), 1u);
  EXPECT_EQ(pool.pop_first(), 3u);
  pool.remove(4);
  EXPECT_EQ(pool.pop_first(), 5u);
  EXPECT_TRUE(pool.empty());
}

TEST(SwapRemovePool, MixedOperationsKeepInvariant) {
  SwapRemovePool pool(50);
  Rng rng(7);
  std::set<std::uint64_t> gone;
  for (int step = 0; step < 40; ++step) {
    if (step % 3 == 0) {
      const std::uint64_t id = step;
      if (pool.remove(id)) gone.insert(id);
    } else {
      const std::uint64_t id = pool.pop_random(rng);
      EXPECT_TRUE(gone.insert(id).second);
    }
    EXPECT_EQ(pool.size() + gone.size(), 50u);
    for (const std::uint64_t id : gone) EXPECT_FALSE(pool.contains(id));
  }
}

TEST(SwapRemovePool, PopOnEmptyPoolThrows) {
  SwapRemovePool pool(0);
  Rng rng(1);
  EXPECT_THROW(pool.pop_first(), std::logic_error);
  EXPECT_THROW(pool.pop_random(rng), std::logic_error);
}

TEST(SwapRemovePool, PopAfterDrainThrowsAndRecoversOnInsert) {
  SwapRemovePool pool(3);
  while (!pool.empty()) pool.pop_first();
  Rng rng(2);
  EXPECT_THROW(pool.pop_first(), std::logic_error);
  EXPECT_THROW(pool.pop_random(rng), std::logic_error);
  // A requeue after the drain brings the pool back to life.
  EXPECT_TRUE(pool.insert(1));
  EXPECT_EQ(pool.pop_first(), 1u);
  EXPECT_THROW(pool.pop_first(), std::logic_error);
}

TEST(SwapRemovePool, IdsViewMatchesSize) {
  SwapRemovePool pool(8);
  pool.remove(1);
  pool.remove(5);
  EXPECT_EQ(pool.ids().size(), pool.size());
  for (const std::uint64_t id : pool.ids()) EXPECT_TRUE(pool.contains(id));
}

TEST(SwapRemovePool, CapacityAboveUint32BoundaryThrows) {
  // Positions/ids are uint32 with ~0u as the absent marker, so any
  // capacity past kMaxCapacity would silently corrupt the index. The
  // constructor must refuse it loudly (TaskPool is the supported path).
  EXPECT_THROW(SwapRemovePool(SwapRemovePool::kMaxCapacity + 1),
               std::length_error);
  EXPECT_THROW(SwapRemovePool(std::uint64_t{1} << 32), std::length_error);
  EXPECT_THROW(SwapRemovePool((std::uint64_t{1} << 40) + 17),
               std::length_error);
  EXPECT_EQ(SwapRemovePool::kMaxCapacity, 0xFFFFFFFEull);
}

TEST(SwapRemovePool, ResetRefillsToIdentity) {
  SwapRemovePool pool(6);
  Rng rng(9);
  pool.pop_random(rng);
  pool.pop_first();
  pool.remove(4);
  pool.reset();
  EXPECT_EQ(pool.size(), 6u);
  for (std::uint64_t id = 0; id < 6; ++id) EXPECT_TRUE(pool.contains(id));
  for (std::uint64_t id = 0; id < 6; ++id) EXPECT_EQ(pool.pop_first(), id);
}

TEST(SwapRemovePool, ResetPoolMatchesFreshPoolBitForBit) {
  // The reuse contract: after reset(), the pool must consume an RNG
  // stream and produce ids exactly like a newly constructed pool.
  SwapRemovePool reused(64);
  Rng warm(5);
  for (int i = 0; i < 40; ++i) reused.pop_random(warm);
  reused.insert(7);
  reused.reset();

  SwapRemovePool fresh(64);
  Rng rng_a(321), rng_b(321);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(reused.pop_random(rng_a), fresh.pop_random(rng_b)) << i;
  }
}

TEST(SwapRemovePool, UnindexedPopsMatchIndexedPopsExactly) {
  // pop_random_unindexed must consume the RNG identically and return
  // the identical id sequence; the deferred index must self-heal on
  // the first indexed operation so contains/insert/pop_first behave
  // as if every pop had been indexed (the crash-requeue path).
  SwapRemovePool indexed(97), lazy(97);
  Rng rng_a(11), rng_b(11);
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(indexed.pop_random(rng_a), lazy.pop_random_unindexed(rng_b))
        << i;
  }
  // Index self-heal: membership agrees for every id.
  for (std::uint64_t id = 0; id < 97; ++id) {
    ASSERT_EQ(indexed.contains(id), lazy.contains(id)) << id;
  }
  // Requeue + further mixed use stays in lockstep.
  for (std::uint64_t id = 0; id < 97; ++id) {
    if (!indexed.contains(id)) {
      ASSERT_TRUE(indexed.insert(id));
      ASSERT_TRUE(lazy.insert(id));
      break;
    }
  }
  ASSERT_EQ(indexed.size(), lazy.size());
  while (!indexed.empty()) {
    ASSERT_EQ(indexed.pop_first(), lazy.pop_first());
    if (indexed.empty()) break;
    ASSERT_EQ(indexed.pop_random(rng_a), lazy.pop_random_unindexed(rng_b));
  }
  EXPECT_TRUE(lazy.empty());
}

TEST(SwapRemovePool, ManyResetCyclesStayConsistent) {
  SwapRemovePool pool(16);
  for (int cycle = 0; cycle < 100; ++cycle) {
    Rng rng(static_cast<std::uint64_t>(cycle));
    std::set<std::uint64_t> seen;
    while (!pool.empty()) seen.insert(pool.pop_random(rng));
    EXPECT_EQ(seen.size(), 16u);
    pool.reset();
  }
  EXPECT_EQ(pool.size(), 16u);
}

}  // namespace
}  // namespace hetsched
