#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

namespace hetsched {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream out;
  {
    JsonWriter json(out, /*pretty=*/false);
    build(json);
  }
  return out.str();
}

TEST(JsonWriter, EmptyObject) {
  EXPECT_EQ(compact([](JsonWriter& j) {
              j.begin_object();
              j.end_object();
            }),
            "{}");
}

TEST(JsonWriter, EmptyArray) {
  EXPECT_EQ(compact([](JsonWriter& j) {
              j.begin_array();
              j.end_array();
            }),
            "[]");
}

TEST(JsonWriter, ScalarFields) {
  const std::string text = compact([](JsonWriter& j) {
    j.begin_object();
    j.field("s", "hi");
    j.field("i", std::int64_t{-3});
    j.field("u", std::uint64_t{7});
    j.field("d", 2.5);
    j.field("b", true);
    j.key("n");
    j.null();
    j.end_object();
  });
  EXPECT_EQ(text, R"({"s":"hi","i":-3,"u":7,"d":2.5,"b":true,"n":null})");
}

TEST(JsonWriter, ArrayOfValues) {
  const std::string text = compact([](JsonWriter& j) {
    j.begin_array();
    j.value(1.0);
    j.value(2.0);
    j.value("three");
    j.end_array();
  });
  EXPECT_EQ(text, R"([1,2,"three"])");
}

TEST(JsonWriter, NestedStructures) {
  const std::string text = compact([](JsonWriter& j) {
    j.begin_object();
    j.key("list");
    j.begin_array();
    j.begin_object();
    j.field("x", 1);
    j.end_object();
    j.begin_object();
    j.field("x", 2);
    j.end_object();
    j.end_array();
    j.end_object();
  });
  EXPECT_EQ(text, R"({"list":[{"x":1},{"x":2}]})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string text = compact([](JsonWriter& j) {
    j.begin_array();
    j.value(std::numeric_limits<double>::infinity());
    j.value(std::nan(""));
    j.end_array();
  });
  EXPECT_EQ(text, "[null,null]");
}

TEST(JsonWriter, PrettyModeIndents) {
  std::ostringstream out;
  {
    JsonWriter json(out, /*pretty=*/true);
    json.begin_object();
    json.field("a", 1);
    json.end_object();
  }
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

}  // namespace
}  // namespace hetsched
