#include "runtime/kernels.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(OuterBlock, ComputesRankOneProduct) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  std::vector<double> out(9, -1.0);
  outer_block(a, b, out, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(out[r * 3 + c], a[r] * b[c]);
    }
  }
}

TEST(OuterBlock, OverwritesPreviousContents) {
  const std::vector<double> a{2.0};
  const std::vector<double> b{3.0};
  std::vector<double> out{999.0};
  outer_block(a, b, out, 1);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
}

TEST(GemmBlock, IdentityTimesMatrix) {
  const std::uint32_t l = 3;
  std::vector<double> eye(9, 0.0);
  for (std::uint32_t i = 0; i < l; ++i) eye[i * l + i] = 1.0;
  std::vector<double> b{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> c(9, 0.0);
  gemm_block_accumulate(eye, b, c, l);
  for (int e = 0; e < 9; ++e) EXPECT_DOUBLE_EQ(c[e], b[e]);
}

TEST(GemmBlock, AccumulatesIntoC) {
  const std::uint32_t l = 2;
  const std::vector<double> a{1, 0, 0, 1};
  const std::vector<double> b{1, 1, 1, 1};
  std::vector<double> c{5, 5, 5, 5};
  gemm_block_accumulate(a, b, c, l);
  for (int e = 0; e < 4; ++e) EXPECT_DOUBLE_EQ(c[e], 6.0);
}

TEST(GemmBlock, KnownSmallProduct) {
  const std::uint32_t l = 2;
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{5, 6, 7, 8};
  std::vector<double> c(4, 0.0);
  gemm_block_accumulate(a, b, c, l);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(GemmBlock, RepeatedAccumulationMatchesScaling) {
  const std::uint32_t l = 4;
  std::vector<double> a(16), b(16);
  for (int e = 0; e < 16; ++e) {
    a[e] = 0.5 * e - 3.0;
    b[e] = 0.25 * e + 1.0;
  }
  std::vector<double> once(16, 0.0), thrice(16, 0.0);
  gemm_block_accumulate(a, b, once, l);
  for (int rep = 0; rep < 3; ++rep) gemm_block_accumulate(a, b, thrice, l);
  for (int e = 0; e < 16; ++e) EXPECT_NEAR(thrice[e], 3.0 * once[e], 1e-12);
}

}  // namespace
}  // namespace hetsched
