#include "runtime/block_matrix.hpp"

#include <gtest/gtest.h>

namespace hetsched {
namespace {

TEST(BlockMatrix, StartsZeroed) {
  BlockMatrix m(3, 4);
  EXPECT_EQ(m.n_blocks(), 3u);
  EXPECT_EQ(m.block_size(), 4u);
  EXPECT_EQ(m.block_elems(), 16u);
  for (std::uint32_t r = 0; r < 12; ++r) {
    for (std::uint32_t c = 0; c < 12; ++c) EXPECT_EQ(m.at(r, c), 0.0);
  }
}

TEST(BlockMatrix, ElementAndBlockViewsAgree) {
  BlockMatrix m(2, 3);
  m.at(4, 5) = 7.5;  // block (1,1), local (1,2)
  const auto blk = m.block(1, 1);
  EXPECT_DOUBLE_EQ(blk[1 * 3 + 2], 7.5);

  auto blk01 = m.block(0, 1);
  blk01[0] = -2.0;  // block (0,1), local (0,0) -> global (0,3)
  EXPECT_DOUBLE_EQ(m.at(0, 3), -2.0);
}

TEST(BlockMatrix, BlocksAreContiguousAndDisjoint) {
  BlockMatrix m(2, 2);
  m.block(0, 0)[0] = 1.0;
  m.block(0, 1)[0] = 2.0;
  m.block(1, 0)[0] = 3.0;
  m.block(1, 1)[0] = 4.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 4.0);
}

TEST(BlockMatrix, FillAppliesFunction) {
  BlockMatrix m(2, 2);
  m.fill([](std::uint32_t r, std::uint32_t c) {
    return static_cast<double>(10 * r + c);
  });
  EXPECT_DOUBLE_EQ(m.at(3, 2), 32.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(BlockMatrix, MaxAbsDiff) {
  BlockMatrix a(2, 2), b(2, 2);
  a.at(1, 1) = 5.0;
  b.at(1, 1) = 3.5;
  b.at(3, 3) = -1.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.5);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(a), 0.0);
}

TEST(BlockMatrix, MaxAbsDiffRejectsShapeMismatch) {
  BlockMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(a.max_abs_diff(b), std::invalid_argument);
}

TEST(BlockMatrix, RejectsZeroDimensions) {
  EXPECT_THROW(BlockMatrix(0, 4), std::invalid_argument);
  EXPECT_THROW(BlockMatrix(4, 0), std::invalid_argument);
}

TEST(BlockVector, BlockViews) {
  BlockVector v(3, 4);
  EXPECT_EQ(v.size(), 12u);
  v.block(1)[2] = 9.0;
  EXPECT_DOUBLE_EQ(v.at(6), 9.0);
  v.at(11) = 3.0;
  EXPECT_DOUBLE_EQ(v.block(2)[3], 3.0);
}

TEST(BlockVector, RejectsZeroDimensions) {
  EXPECT_THROW(BlockVector(0, 4), std::invalid_argument);
  EXPECT_THROW(BlockVector(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
