// The real executor must produce numerically exact results for every
// strategy: end-to-end proof that the schedulers ship all data their
// tasks need.
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"

namespace hetsched {
namespace {

BlockVector make_vector(std::uint32_t n, std::uint32_t l, double scale) {
  BlockVector v(n, l);
  for (std::uint32_t i = 0; i < n * l; ++i) {
    v.at(i) = scale * (static_cast<double>(i % 17) - 8.0);
  }
  return v;
}

BlockMatrix make_matrix(std::uint32_t n, std::uint32_t l, double scale) {
  BlockMatrix m(n, l);
  m.fill([scale](std::uint32_t r, std::uint32_t c) {
    return scale * (static_cast<double>((r * 31 + c * 7) % 23) - 11.0);
  });
  return m;
}

class OuterExecutorTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OuterExecutorTest, ComputesExactOuterProduct) {
  const std::uint32_t n = 12, l = 4, workers = 3;
  OuterStrategyOptions options;
  options.phase2_fraction = 0.1;
  auto strategy =
      make_outer_strategy(GetParam(), OuterConfig{n}, workers, 11, options);

  const BlockVector a = make_vector(n, l, 0.5);
  const BlockVector b = make_vector(n, l, -0.25);
  BlockMatrix out(n, l);
  const RuntimeResult result = run_outer_runtime(*strategy, a, b, out);

  EXPECT_EQ(result.tasks_executed, static_cast<std::uint64_t>(n) * n);
  EXPECT_DOUBLE_EQ(result.max_abs_error, 0.0);
  EXPECT_GT(result.blocks_transferred, 0u);
  std::uint64_t sum = 0;
  for (const auto t : result.per_worker_tasks) sum += t;
  EXPECT_EQ(sum, result.tasks_executed);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, OuterExecutorTest,
                         ::testing::Values("RandomOuter", "SortedOuter",
                                           "DynamicOuter",
                                           "DynamicOuter2Phases"));

class MatmulExecutorTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MatmulExecutorTest, ComputesExactProduct) {
  const std::uint32_t n = 6, l = 4, workers = 3;
  MatmulStrategyOptions options;
  options.phase2_fraction = 0.1;
  auto strategy =
      make_matmul_strategy(GetParam(), MatmulConfig{n}, workers, 13, options);

  const BlockMatrix a = make_matrix(n, l, 0.125);
  const BlockMatrix b = make_matrix(n, l, 0.5);
  BlockMatrix c(n, l);
  const RuntimeResult result = run_matmul_runtime(*strategy, a, b, c);

  EXPECT_EQ(result.tasks_executed,
            static_cast<std::uint64_t>(n) * n * n);
  EXPECT_NEAR(result.max_abs_error, 0.0, 1e-9);
  EXPECT_GT(result.blocks_transferred, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, MatmulExecutorTest,
                         ::testing::Values("RandomMatrix", "SortedMatrix",
                                           "DynamicMatrix",
                                           "DynamicMatrix2Phases"));

TEST(Executor, RuntimeBlockCountMatchesStrategyAccounting) {
  // The executor's transfer count must equal what a simulation of the
  // same strategy object would have charged: run the strategy twice
  // with the same seed, once under each harness.
  const std::uint32_t n = 10, workers = 4;
  auto for_sim =
      make_outer_strategy("DynamicOuter", OuterConfig{n}, workers, 21);
  auto for_runtime =
      make_outer_strategy("DynamicOuter", OuterConfig{n}, workers, 21);

  // Exhaust the simulation strategy round-robin and count blocks.
  std::uint64_t sim_blocks = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < workers; ++w) {
      if (const auto a = for_sim->on_request(w)) {
        sim_blocks += a->blocks.size();
        progress = true;
      }
    }
  }

  const BlockVector a = make_vector(n, 2, 1.0);
  const BlockVector b = make_vector(n, 2, 2.0);
  BlockMatrix out(n, 2);
  const RuntimeResult result = run_outer_runtime(*for_runtime, a, b, out);
  // Thread scheduling reorders requests, so totals need not be equal,
  // but both runs ship between 2n (single-worker floor) and 2n*workers.
  EXPECT_GE(result.blocks_transferred, 2u * n);
  EXPECT_LE(result.blocks_transferred, 2u * n * workers);
  EXPECT_GE(sim_blocks, 2u * n);
  EXPECT_LE(sim_blocks, static_cast<std::uint64_t>(2u * n) * workers);
}

TEST(Executor, SingleWorkerOuterTransfersExactlyAllBlocks) {
  const std::uint32_t n = 8;
  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{n}, 1, 5);
  const BlockVector a = make_vector(n, 3, 1.0);
  const BlockVector b = make_vector(n, 3, 1.0);
  BlockMatrix out(n, 3);
  const RuntimeResult result = run_outer_runtime(*strategy, a, b, out);
  EXPECT_EQ(result.blocks_transferred, 2u * n);
  EXPECT_DOUBLE_EQ(result.max_abs_error, 0.0);
}

TEST(Executor, ShapeMismatchThrows) {
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 1, 1);
  const BlockVector a(4, 2);
  const BlockVector b(5, 2);
  BlockMatrix out(4, 2);
  EXPECT_THROW(run_outer_runtime(*strategy, a, b, out), std::invalid_argument);
}

TEST(Executor, WrongProblemSizeThrows) {
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 1, 1);
  const BlockVector a(5, 2);
  const BlockVector b(5, 2);
  BlockMatrix out(5, 2);
  EXPECT_THROW(run_outer_runtime(*strategy, a, b, out), std::invalid_argument);
}

TEST(Executor, ThrottledRunStillExact) {
  const std::uint32_t n = 5, workers = 2;
  auto strategy =
      make_matmul_strategy("DynamicMatrix", MatmulConfig{n}, workers, 3);
  const BlockMatrix a = make_matrix(n, 2, 1.0);
  const BlockMatrix b = make_matrix(n, 2, -1.0);
  BlockMatrix c(n, 2);
  RuntimeConfig config;
  config.throttle_us = 5.0;
  config.weights = {1.0, 4.0};
  const RuntimeResult result = run_matmul_runtime(*strategy, a, b, c, config);
  EXPECT_NEAR(result.max_abs_error, 0.0, 1e-9);
}

}  // namespace
}  // namespace hetsched
