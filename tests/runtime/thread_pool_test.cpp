// The dynamic parallel-for and the process-wide parallelism budget
// behind the replication engine and campaign work queue.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace hetsched {
namespace {

// Restores the hardware-default capacity on scope exit so an override
// cannot leak into other tests.
struct BudgetOverride {
  explicit BudgetOverride(std::uint32_t capacity) {
    set_parallel_budget_capacity(capacity);
  }
  ~BudgetOverride() { set_parallel_budget_capacity(0); }
};

TEST(ParallelForDynamic, VisitsEveryItemExactlyOnce) {
  for (const std::uint32_t workers : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for_dynamic(workers, hits.size(),
                         [&](std::uint64_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1) << "workers=" << workers;
  }
}

TEST(ParallelForDynamic, MoreWorkersThanItemsIsFine) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for_dynamic(16, hits.size(),
                       [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForDynamic, ZeroCountIsANoOp) {
  bool called = false;
  parallel_for_dynamic(4, 0, [&](std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForDynamic, SerialPathRethrowsAndStops) {
  int ran = 0;
  EXPECT_THROW(parallel_for_dynamic(1, 10,
                                    [&](std::uint64_t i) {
                                      if (i == 3) throw std::runtime_error("x");
                                      ++ran;
                                    }),
               std::runtime_error);
  EXPECT_EQ(ran, 3);
}

TEST(ParallelForDynamic, ParallelPathRethrowsFirstError) {
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for_dynamic(4, 64,
                                    [&](std::uint64_t i) {
                                      if (i == 0) {
                                        throw std::runtime_error("boom");
                                      }
                                      ran.fetch_add(1);
                                    }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 64);
}

TEST(ParallelBudget, CapacityDefaultsToAtLeastOne) {
  EXPECT_GE(parallel_budget_capacity(), 1u);
}

TEST(ParallelBudget, LeaseGrantsUpToCapacity) {
  const BudgetOverride cap(4);
  EXPECT_EQ(parallel_budget_capacity(), 4u);
  const ParallelLease a(3);
  EXPECT_EQ(a.granted(), 3u);
  EXPECT_EQ(parallel_budget_in_use(), 3u);
  const ParallelLease b(3);
  EXPECT_EQ(b.granted(), 1u);  // only one slot left
  const ParallelLease c(2);
  EXPECT_EQ(c.granted(), 0u);  // drained: the caller should go serial
  EXPECT_EQ(parallel_budget_in_use(), 4u);
}

TEST(ParallelBudget, DestructionReleasesSlots) {
  const BudgetOverride cap(2);
  {
    const ParallelLease a(2);
    EXPECT_EQ(a.granted(), 2u);
  }
  EXPECT_EQ(parallel_budget_in_use(), 0u);
  const ParallelLease b(2);
  EXPECT_EQ(b.granted(), 2u);
}

TEST(ParallelBudget, ZeroWantGrantsNothing) {
  const ParallelLease lease(0);
  EXPECT_EQ(lease.granted(), 0u);
}

}  // namespace
}  // namespace hetsched
