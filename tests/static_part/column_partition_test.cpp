#include "static_part/column_partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "platform/lower_bound.hpp"
#include "platform/platform.hpp"
#include "platform/speed_model.hpp"

namespace hetsched {
namespace {

void expect_valid_partition(const SquarePartition& part,
                            const std::vector<double>& areas) {
  ASSERT_EQ(part.rects.size(), areas.size());
  double perim = 0.0;
  for (std::size_t k = 0; k < areas.size(); ++k) {
    const PartitionRect& r = part.rects[k];
    EXPECT_EQ(r.owner, k);
    EXPECT_NEAR(r.area(), areas[k], 1e-9) << "rect " << k;
    EXPECT_GE(r.x, -1e-12);
    EXPECT_GE(r.y, -1e-12);
    EXPECT_LE(r.x + r.w, 1.0 + 1e-9);
    EXPECT_LE(r.y + r.h, 1.0 + 1e-9);
    perim += r.half_perimeter();
  }
  EXPECT_NEAR(perim, part.total_half_perimeter, 1e-9);
  // Total area covers the unit square.
  double area = 0.0;
  for (const auto& r : part.rects) area += r.area();
  EXPECT_NEAR(area, 1.0, 1e-9);
}

TEST(ColumnPartition, SingleProcessorIsWholeSquare) {
  const auto part = partition_unit_square({1.0});
  expect_valid_partition(part, {1.0});
  EXPECT_EQ(part.columns, 1u);
  EXPECT_NEAR(part.total_half_perimeter, 2.0, 1e-12);
}

TEST(ColumnPartition, TwoEqualProcessorsSplitInHalf) {
  const std::vector<double> areas{0.5, 0.5};
  const auto part = partition_unit_square(areas);
  expect_valid_partition(part, areas);
  // One column of two stacked rectangles: 2*0.5*2 ... the DP picks
  // min(2 columns: cost 1*0.5+1 + 1*0.5+1 = 3, 1 column: 2*1+1 = 3).
  EXPECT_NEAR(part.total_half_perimeter, 3.0, 1e-9);
}

TEST(ColumnPartition, FourEqualProcessorsFormTwoColumns) {
  const std::vector<double> areas(4, 0.25);
  const auto part = partition_unit_square(areas);
  expect_valid_partition(part, areas);
  // 2 columns x 2 rows of squares: cost = sum(w+h) = 4*(0.5+0.5) = 4.
  EXPECT_EQ(part.columns, 2u);
  EXPECT_NEAR(part.total_half_perimeter, 4.0, 1e-9);
}

TEST(ColumnPartition, PerfectSquaresAchieveLowerBound) {
  // p equal processors with p a perfect square: sqrt(p) columns of
  // sqrt(p) squares achieves 2 sum sqrt(a) exactly.
  const std::size_t p = 9;
  const std::vector<double> areas(p, 1.0 / p);
  const auto part = partition_unit_square(areas);
  const double lb = 2.0 * rel_speed_power_sum(areas, 0.5);
  EXPECT_NEAR(part.total_half_perimeter, lb, 1e-9);
}

TEST(ColumnPartition, HandlesVerySkewedAreas) {
  const std::vector<double> areas{0.90, 0.05, 0.05};
  const auto part = partition_unit_square(areas);
  expect_valid_partition(part, areas);
}

TEST(ColumnPartition, WithinSevenFourthsOfLowerBoundRandomInstances) {
  // The paper cites this construction as a 7/4-approximation.
  Rng rng(123);
  UniformIntervalSpeeds model(10.0, 100.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t p = 2 + rng.next_below(40);
    const Platform platform = make_platform(model, p, rng);
    const auto areas = platform.relative_speeds();
    const auto part = partition_unit_square(areas);
    expect_valid_partition(part, areas);
    const double lb = 2.0 * rel_speed_power_sum(areas, 0.5);
    EXPECT_LE(part.total_half_perimeter, 1.75 * lb + 1e-9)
        << "trial " << trial << " p=" << p;
    EXPECT_GE(part.total_half_perimeter, lb - 1e-9);
  }
}

TEST(ColumnPartition, ColumnsTileTheSquareWithoutOverlap) {
  Rng rng(5);
  UniformIntervalSpeeds model(10.0, 100.0);
  const Platform platform = make_platform(model, 12, rng);
  const auto areas = platform.relative_speeds();
  const auto part = partition_unit_square(areas);
  // Sample points and check exactly one rectangle contains each.
  for (int s = 0; s < 2000; ++s) {
    const double x = rng.next_double();
    const double y = rng.next_double();
    int hits = 0;
    for (const auto& r : part.rects) {
      if (x >= r.x && x < r.x + r.w && y >= r.y && y < r.y + r.h) ++hits;
    }
    EXPECT_EQ(hits, 1) << "point (" << x << ", " << y << ")";
  }
}

TEST(ColumnPartition, RejectsBadInput) {
  EXPECT_THROW(partition_unit_square({}), std::invalid_argument);
  EXPECT_THROW(partition_unit_square({0.5, 0.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(partition_unit_square({0.6, 0.6}), std::invalid_argument);
}

TEST(StaticOuterVolume, ScalesWithN) {
  const std::vector<double> rs{0.5, 0.5};
  EXPECT_NEAR(static_outer_volume(200, rs), 2.0 * static_outer_volume(100, rs),
              1e-9);
}

TEST(StaticOuterRatio, BetweenOneAndSevenFourths) {
  Rng rng(9);
  UniformIntervalSpeeds model(10.0, 100.0);
  for (int trial = 0; trial < 10; ++trial) {
    const Platform platform = make_platform(model, 20, rng);
    const double ratio = static_outer_ratio(platform.relative_speeds());
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, 1.75 + 1e-9);
  }
}

}  // namespace
}  // namespace hetsched
