#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "outer/outer_factory.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

// Minimal scan of the compact single-line trace JSON: pulls the "X"
// (complete) events' ts/dur/tid fields without a JSON parser.
struct GanttSlice {
  double ts;
  double dur;
  std::int64_t tid;
};

std::vector<GanttSlice> parse_complete_events(const std::string& text) {
  std::vector<GanttSlice> out;
  for (std::size_t pos = text.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = text.find("\"ph\":\"X\"", pos + 1)) {
    // All X events are flat objects, so the fields sit between the
    // enclosing braces around this match.
    const std::size_t begin = text.rfind('{', pos);
    const std::size_t end = text.find('}', pos);
    const std::string obj = text.substr(begin, end - begin + 1);
    GanttSlice slice{};
    const auto field = [&obj](const char* name) {
      const std::size_t at = obj.find(name);
      EXPECT_NE(at, std::string::npos) << name << " missing in " << obj;
      return std::stod(obj.substr(at + std::string(name).size()));
    };
    slice.ts = field("\"ts\":");
    slice.dur = field("\"dur\":");
    slice.tid = static_cast<std::int64_t>(field("\"tid\":"));
    out.push_back(slice);
  }
  return out;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

TEST(TraceExport, EmitsCompleteEventsPerTask) {
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 2, 1);
  Platform platform({10.0, 20.0});
  RecordingTrace trace;
  simulate(*strategy, platform, {}, &trace);

  std::ostringstream out;
  export_chrome_trace(out, trace, platform);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"comm\""), std::string::npos);
  // 16 tasks => 16 complete events.
  std::size_t count = 0;
  for (std::size_t pos = text.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = text.find("\"ph\":\"X\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 16u);
}

TEST(TraceExport, EmptyTraceStillValidJsonShell) {
  RecordingTrace trace;
  Platform platform({1.0});
  std::ostringstream out;
  export_chrome_trace(out, trace, platform);
  EXPECT_NE(out.str().find("\"traceEvents\":[]"), std::string::npos);
}

// Under per-task speed perturbation 1/speed is only an estimate of a
// task's true duration, so the exporter clamps slices into the gap
// since the worker's previous completion: every duration must stay
// non-negative and slices on one worker row must never overlap.
TEST(TraceExport, PerturbedRunSlicesAreNonNegativeAndDisjoint) {
  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{12}, 4, 3);
  Platform platform({10.0, 25.0, 40.0, 80.0});
  SimConfig sim_config;
  sim_config.seed = 99;
  sim_config.perturbation = PerturbationModel(20.0);  // +/- 20% per task
  RecordingTrace trace;
  simulate(*strategy, platform, sim_config, &trace);

  std::ostringstream out;
  export_chrome_trace(out, trace, platform);
  const auto slices = parse_complete_events(out.str());
  ASSERT_EQ(slices.size(), 144u);

  std::map<std::int64_t, double> prev_end;
  for (const auto& slice : slices) {
    EXPECT_GE(slice.dur, 0.0);
    // Events are emitted in completion order, so per-worker starts
    // must not cut into the previous slice (tolerance for the %.12g
    // round-trip through text).
    const auto it = prev_end.find(slice.tid);
    if (it != prev_end.end()) {
      EXPECT_GE(slice.ts - it->second, -1e-3)
          << "overlap on worker " << slice.tid;
    }
    prev_end[slice.tid] = slice.ts + slice.dur;
  }
}

TEST(TraceExport, RecordingTraceCapDropsAndCounts) {
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{8}, 2, 1);
  Platform platform({10.0, 20.0});

  // Uncapped reference run.
  RecordingTrace full;
  simulate(*strategy, platform, {}, &full);
  const std::size_t total = full.stored_events();
  EXPECT_EQ(full.dropped_events(), 0u);
  ASSERT_GT(total, 20u);

  auto strategy2 = make_outer_strategy("SortedOuter", OuterConfig{8}, 2, 1);
  RecordingTrace capped(20);
  simulate(*strategy2, platform, {}, &capped);
  EXPECT_EQ(capped.stored_events(), 20u);
  EXPECT_EQ(capped.dropped_events(), total - 20u);
  // The capped prefix matches the uncapped run event-for-event.
  ASSERT_LE(capped.completions().size(), full.completions().size());
  for (std::size_t i = 0; i < capped.completions().size(); ++i) {
    EXPECT_EQ(capped.completions()[i].task, full.completions()[i].task);
  }
}

// The trace shell carries the truncation count so a viewer (or the
// analyze warning path) can tell a complete Gantt from a capped one.
TEST(TraceExport, MetadataCarriesDroppedEvents) {
  Platform platform({10.0, 20.0});

  RecordingTrace clean;
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 2, 1);
  simulate(*strategy, platform, {}, &clean);
  std::ostringstream a;
  export_chrome_trace(a, clean, platform);
  EXPECT_NE(a.str().find("\"metadata\":{\"dropped_events\":0}"),
            std::string::npos);

  RecordingTrace capped(10);
  auto strategy2 = make_outer_strategy("SortedOuter", OuterConfig{4}, 2, 1);
  simulate(*strategy2, platform, {}, &capped);
  ASSERT_GT(capped.dropped_events(), 0u);
  std::ostringstream b;
  export_chrome_trace(b, capped, platform);
  EXPECT_NE(b.str().find("\"metadata\":{\"dropped_events\":" +
                         std::to_string(capped.dropped_events()) + "}"),
            std::string::npos);
}

TEST(TraceExport, PhaseSwitchEmitsGlobalInstant) {
  OuterStrategyOptions options;
  options.phase2_fraction = std::exp(-2.0);
  auto strategy = make_outer_strategy("DynamicOuter2Phases", OuterConfig{10},
                                      2, 4, options);
  Platform platform({10.0, 30.0});
  RecordingTrace trace;
  simulate(*strategy, platform, {}, &trace);
  ASSERT_EQ(trace.phase_switches().size(), 1u);

  std::ostringstream out;
  export_chrome_trace(out, trace, platform);
  const std::string text = out.str();
  EXPECT_EQ(count_occurrences(text, "\"cat\":\"phase\""), 1u);
  EXPECT_NE(text.find("phase switch ("), std::string::npos);
  EXPECT_NE(text.find("\"s\":\"g\""), std::string::npos);
}

TEST(TraceExport, SampledChannelsBecomeCounterTracks) {
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 2, 1);
  Platform platform({10.0, 20.0});
  RecordingTrace trace;
  simulate(*strategy, platform, {}, &trace);

  TimeSeriesSampler sampler(1.0);
  double v = 0.0;
  sampler.add_channel("load", [&v] { return v; });
  for (int i = 0; i <= 3; ++i) {
    v = static_cast<double>(i);
    sampler.advance_to(static_cast<double>(i));
  }

  std::ostringstream out;
  export_chrome_trace(out, trace, platform, &sampler);
  const std::string text = out.str();
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"C\""), sampler.num_samples());
  EXPECT_EQ(count_occurrences(text, "\"cat\":\"metrics\""),
            sampler.num_samples());
  EXPECT_NE(text.find("\"name\":\"load\""), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"value\":"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
