#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "outer/outer_factory.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

TEST(TraceExport, EmitsCompleteEventsPerTask) {
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 2, 1);
  Platform platform({10.0, 20.0});
  RecordingTrace trace;
  simulate(*strategy, platform, {}, &trace);

  std::ostringstream out;
  export_chrome_trace(out, trace, platform);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"comm\""), std::string::npos);
  // 16 tasks => 16 complete events.
  std::size_t count = 0;
  for (std::size_t pos = text.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = text.find("\"ph\":\"X\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 16u);
}

TEST(TraceExport, EmptyTraceStillValidJsonShell) {
  RecordingTrace trace;
  Platform platform({1.0});
  std::ostringstream out;
  export_chrome_trace(out, trace, platform);
  EXPECT_NE(out.str().find("\"traceEvents\":[]"), std::string::npos);
}

}  // namespace
}  // namespace hetsched
