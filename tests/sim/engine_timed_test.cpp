#include "sim/engine_timed.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "outer/outer_factory.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

/// Hands out one task and `blocks` block transfers per request.
class UnitStrategy final : public Strategy {
 public:
  UnitStrategy(std::uint64_t tasks, std::uint32_t workers,
               std::uint32_t blocks_per_task)
      : total_(tasks), remaining_(tasks), workers_(workers),
        blocks_(blocks_per_task) {}

  std::string name() const override { return "Unit"; }
  std::uint64_t total_tasks() const override { return total_; }
  std::uint64_t unassigned_tasks() const override { return remaining_; }
  std::uint32_t workers() const override { return workers_; }

  using Strategy::on_request;
  bool on_request(std::uint32_t, Assignment& out) override {
    out.clear();
    if (remaining_ == 0) return false;
    --remaining_;
    out.tasks.push_back(remaining_);
    for (std::uint32_t b = 0; b < blocks_; ++b) {
      out.blocks.push_back(BlockRef{Operand::kVecA, b, 0});
    }
    return true;
  }

 private:
  std::uint64_t total_;
  std::uint64_t remaining_;
  std::uint32_t workers_;
  std::uint32_t blocks_;
};

TEST(EngineTimed, ComputeBoundWhenBandwidthHuge) {
  UnitStrategy strategy(100, 1, 1);
  Platform platform({1.0});
  TimedSimConfig config;
  config.comm.bandwidth = 1e9;
  config.lookahead = 4;
  const TimedSimResult result = simulate_timed(strategy, platform, config);
  EXPECT_EQ(result.total_tasks_done, 100u);
  // 100 tasks at speed 1 => makespan ~100 (communication invisible).
  EXPECT_NEAR(result.makespan, 100.0, 0.01);
  EXPECT_LT(result.starvation_fraction(), 1e-6);
}

TEST(EngineTimed, CommunicationBoundWhenBandwidthTiny) {
  // 1 block per task at bandwidth 0.1 => 10 time units per task through
  // the link; compute takes 1. Makespan is dominated by the link.
  UnitStrategy strategy(20, 1, 1);
  Platform platform({1.0});
  TimedSimConfig config;
  config.comm.bandwidth = 0.1;
  config.lookahead = 4;
  const TimedSimResult result = simulate_timed(strategy, platform, config);
  EXPECT_GT(result.makespan, 0.9 * 200.0);
  EXPECT_GT(result.starvation_fraction(), 0.5);
}

TEST(EngineTimed, LinkBusyTimeMatchesVolume) {
  UnitStrategy strategy(50, 2, 2);
  Platform platform({1.0, 1.0});
  TimedSimConfig config;
  config.comm.bandwidth = 10.0;
  config.comm.latency = 0.0;
  const TimedSimResult result = simulate_timed(strategy, platform, config);
  // Every task carries 2 blocks: 100 blocks at 10 blocks/unit = 10 units.
  EXPECT_NEAR(result.link_busy_time, 10.0, 1e-9);
  EXPECT_EQ(result.total_blocks, 100u);
}

TEST(EngineTimed, LatencyChargesPerMessage) {
  UnitStrategy strategy(10, 1, 0);
  Platform platform({1.0});
  TimedSimConfig config;
  config.comm.bandwidth = 1e9;
  config.comm.latency = 0.5;
  const TimedSimResult result = simulate_timed(strategy, platform, config);
  // 10 messages, 0.5 each.
  EXPECT_NEAR(result.link_busy_time, 5.0, 1e-9);
}

TEST(EngineTimed, LookaheadOneSerializesCommAndCompute) {
  // With lookahead 1 the worker only requests when idle: makespan is
  // the sum of transfer and compute times.
  UnitStrategy s1(20, 1, 1);
  UnitStrategy s4(20, 1, 1);
  Platform platform({1.0});
  TimedSimConfig config;
  config.comm.bandwidth = 1.0;  // 1 block = 1 compute time
  config.lookahead = 1;
  const TimedSimResult serial = simulate_timed(s1, platform, config);
  EXPECT_NEAR(serial.makespan, 40.0, 0.01);  // 20 * (1 + 1)

  config.lookahead = 4;
  const TimedSimResult overlapped = simulate_timed(s4, platform, config);
  // Pipelined: ~21 (one transfer exposed, rest hidden).
  EXPECT_LT(overlapped.makespan, 23.0);
  EXPECT_GT(serial.makespan, 1.7 * overlapped.makespan);
}

TEST(EngineTimed, ModestLookaheadHidesCommunication) {
  // A small prefetch depth hides the link time (vs lookahead 1, which
  // serializes); *much* deeper queues are not monotonically better —
  // early-bound tasks hoard at workers and hurt end-game balance, which
  // is why the paper's "few blocks in advance" is the right regime.
  Platform platform({1.0, 2.0, 3.0});
  auto run = [&](std::uint32_t la) {
    UnitStrategy strategy(300, 3, 1);
    TimedSimConfig config;
    config.comm.bandwidth = 8.0;
    config.lookahead = la;
    const TimedSimResult r = simulate_timed(strategy, platform, config);
    EXPECT_EQ(r.total_tasks_done, 300u);
    return r.makespan;
  };
  const double serial = run(1);
  const double shallow = run(4);
  EXPECT_LE(shallow, serial + 1e-9);
}

TEST(EngineTimed, MatchesUntimedEngineVolumeForSameStrategySeed) {
  // Timing changes *when* requests happen, not what a request costs:
  // with one worker the request sequence is identical, so the volume
  // must match the untimed engine exactly.
  auto a = make_outer_strategy("DynamicOuter", OuterConfig{20}, 1, 5);
  auto b = make_outer_strategy("DynamicOuter", OuterConfig{20}, 1, 5);
  Platform platform({10.0});
  const SimResult untimed = simulate(*a, platform);
  TimedSimConfig config;
  config.comm.bandwidth = 50.0;
  const TimedSimResult timed = simulate_timed(*b, platform, config);
  EXPECT_EQ(timed.total_blocks, untimed.total_blocks);
  EXPECT_EQ(timed.total_tasks_done, untimed.total_tasks_done);
}

TEST(EngineTimed, WorksWithRealOuterStrategies) {
  for (const auto& name : outer_strategy_names()) {
    OuterStrategyOptions options;
    options.phase2_fraction = 0.05;
    auto strategy = make_outer_strategy(name, OuterConfig{16}, 4, 9, options);
    Platform platform({10.0, 20.0, 40.0, 80.0});
    TimedSimConfig config;
    config.comm.bandwidth = 200.0;
    config.lookahead = 4;
    const TimedSimResult result = simulate_timed(*strategy, platform, config);
    EXPECT_EQ(result.total_tasks_done, 256u) << name;
    EXPECT_GT(result.total_blocks, 0u) << name;
  }
}

TEST(EngineTimed, RejectsBadConfig) {
  UnitStrategy strategy(10, 1, 1);
  Platform platform({1.0});
  TimedSimConfig config;
  config.lookahead = 0;
  EXPECT_THROW(simulate_timed(strategy, platform, config),
               std::invalid_argument);
  config.lookahead = 1;
  config.comm.bandwidth = 0.0;
  EXPECT_THROW(simulate_timed(strategy, platform, config),
               std::invalid_argument);
}

TEST(EngineTimed, MismatchedWorkerCountThrows) {
  UnitStrategy strategy(10, 2, 1);
  Platform platform({1.0});
  EXPECT_THROW(simulate_timed(strategy, platform), std::invalid_argument);
}

TEST(EngineTimed, SharedLinkSlowsManyWorkers) {
  // Total bandwidth fixed: more workers contend for the same link, so
  // per-worker starvation grows.
  auto starvation = [&](std::uint32_t p) {
    UnitStrategy strategy(400, p, 2);
    Platform platform(std::vector<double>(p, 1.0));
    TimedSimConfig config;
    config.comm.bandwidth = 4.0;
    config.lookahead = 2;
    return simulate_timed(strategy, platform, config).starvation_fraction();
  };
  EXPECT_LT(starvation(1), starvation(16) + 1e-12);
}

}  // namespace
}  // namespace hetsched
