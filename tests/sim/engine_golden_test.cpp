// Golden determinism test for the flat engine.
//
// The expected values below were captured from the standalone
// pre-EventCore implementation (commit 0ac23f0) at pinned seeds and are
// compared bit-for-bit (hexfloat literals, EXPECT_EQ on doubles). They
// pin the refactoring invariant "all existing flat-engine outputs stay
// bit-identical": any change to event ordering, tie-breaking, RNG
// stream derivation ("engine.perturb"), fault sequencing or stats
// accounting in sim/event_core.* or sim/engine.* shows up here as an
// exact-value mismatch. Do not loosen these to EXPECT_NEAR — a
// one-ulp drift means the event schedule changed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

struct GoldenWorker {
  std::uint64_t tasks;
  std::uint64_t blocks;
  double busy;
  double finish;
  double speed;
};

void expect_matches(const SimResult& result, double makespan,
                    std::uint64_t total_blocks, std::uint64_t total_tasks,
                    std::uint64_t requeued, std::uint32_t crashed,
                    const std::vector<GoldenWorker>& golden) {
  EXPECT_EQ(result.makespan, makespan);
  EXPECT_EQ(result.total_blocks, total_blocks);
  EXPECT_EQ(result.total_tasks_done, total_tasks);
  EXPECT_EQ(result.requeued_tasks, requeued);
  EXPECT_EQ(result.crashed_workers, crashed);
  ASSERT_EQ(result.workers.size(), golden.size());
  for (std::size_t k = 0; k < golden.size(); ++k) {
    SCOPED_TRACE(k);
    EXPECT_EQ(result.workers[k].tasks_done, golden[k].tasks);
    EXPECT_EQ(result.workers[k].blocks_received, golden[k].blocks);
    EXPECT_EQ(result.workers[k].busy_time, golden[k].busy);
    EXPECT_EQ(result.workers[k].finish_time, golden[k].finish);
    EXPECT_EQ(result.workers[k].final_speed, golden[k].speed);
    // Flat engine: timed-only fields are identically zero.
    EXPECT_EQ(result.workers[k].messages_received, 0u);
    EXPECT_EQ(result.workers[k].starved_time, 0.0);
  }
  EXPECT_EQ(result.link_busy_time, 0.0);
}

TEST(EngineGolden, PerturbedTwoPhaseOuterIsBitIdentical) {
  // Re-derived when DynamicOuter switched to the word-parallel frontier
  // and the strict ("fewer than") phase-2 boundary: each data-aware
  // batch is the same task *set* as before but enumerated in ascending
  // index order, and the request arriving exactly at the threshold is
  // now served data-aware, so completion interleaving (hence the
  // perturbed speeds and per-worker tallies) shifted. The RNG stream
  // and its consumption are unchanged. Block counts re-derived once
  // more for the lazy-dense pool: phase-2 pops draw the same positions
  // from an ascending rebuild instead of the swap-scrambled array, so
  // the popped task *identities* (and the blocks they fetch) differ
  // while every duration, time and task tally is bit-identical.
  // Values captured from the first lazy-pool build at the same pinned
  // seeds.
  OuterStrategyOptions options;
  options.phase2_fraction = 0.05;
  auto strategy = make_outer_strategy("DynamicOuter2Phases", OuterConfig{30},
                                      5, 12345, options);
  Platform platform({17.0, 23.0, 42.0, 55.0, 80.0});
  SimConfig config;
  config.seed = 12345;
  config.perturbation = PerturbationModel(5.0);
  const SimResult result = simulate(*strategy, platform, config);
  expect_matches(
      result, 0x1.17fb0d315c3b4p+2, 221, 900, 0, 0,
      {{78, 31, 0x1.0272d1416ded7p+2, 0x1.0272d1416ded7p+2,
        0x1.88d9a7346021p+4},
       {87, 35, 0x1.00f56459bfe42p+2, 0x1.00f56459bfe42p+2,
        0x1.429b76852157cp+4},
       {231, 50, 0x1.01162bebfa27p+2, 0x1.01162bebfa27p+2,
        0x1.80bd9f2b4f5b2p+5},
       {242, 50, 0x1.17fb0d315c3b4p+2, 0x1.17fb0d315c3b4p+2,
        0x1.7c9ffca768a74p+5},
       {262, 55, 0x1.0089d8e8c5cefp+2, 0x1.0089d8e8c5cefp+2,
        0x1.300f9b94ffcdbp+6}});
}

TEST(EngineGolden, FaultedRandomMatmulIsBitIdentical) {
  auto strategy = make_matmul_strategy("RandomMatrix", MatmulConfig{8}, 4, 777);
  Platform platform({10.0, 20.0, 40.0, 80.0});
  SimConfig config;
  config.seed = 777;
  // Worker 1 straggles to a quarter speed at t=0.2 (faults are pushed in
  // declaration order, so the later crash still draws the same event
  // sequence numbers as the original engine did).
  config.faults = {WorkerFault{0.4, 3, 0.0}, WorkerFault{0.2, 1, 0.25}};
  const SimResult result = simulate(*strategy, platform, config);
  expect_matches(
      result, 0x1.199999999999ap+3, 525, 512, 1, 1,
      {{87, 152, 0x1.166666666665ep+3, 0x1.166666666665ep+3, 0x1.4p+3},
       {47, 103, 0x1.199999999999ap+3, 0x1.199999999999ap+3, 0x1.4p+2},
       {347, 192, 0x1.15999999999b9p+3, 0x1.15999999999b9p+3, 0x1.4p+5},
       {31, 78, 0x1.8ccccccccccdp-2, 0x1.8ccccccccccdp-2, 0x1.4p+6}});
}

}  // namespace
}  // namespace hetsched
