// Fault-injection parity for the comm-timed engine (mirrors
// sim/fault_test.cpp): the shared EventCore gives simulate_timed the
// same crash/straggler semantics as the flat engine — plus the timed
// twist that runnable, in-transit and in-flight tasks are all requeued
// while link time already spent stays spent.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/metrics.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/engine_timed.hpp"
#include "sim/trace.hpp"

namespace hetsched {
namespace {

TimedSimConfig with_faults(std::vector<WorkerFault> faults) {
  TimedSimConfig config;
  config.faults = std::move(faults);
  return config;
}

TEST(TimedFaultInjection, CrashedWorkerTasksAreRequeuedAndCompleted) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{30}, 3, 1);
  Platform platform({20.0, 30.0, 50.0});
  RecordingTrace trace;
  const TimedSimResult result = simulate_timed(
      *strategy, platform, with_faults({WorkerFault{0.5, 2, 0.0}}), &trace);
  EXPECT_EQ(result.total_tasks_done, 900u);
  EXPECT_EQ(result.crashed_workers, 1u);
  EXPECT_GE(result.requeued_tasks, 1u);
  // Every task completes exactly once despite the crash.
  std::set<TaskId> completed;
  for (const auto& ev : trace.completions()) {
    EXPECT_TRUE(completed.insert(ev.task).second);
  }
  EXPECT_EQ(completed.size(), 900u);
  // The dead worker does nothing after t = 0.5 (stale in-flight message
  // and task-done events are dropped by the epoch check).
  for (const auto& ev : trace.completions()) {
    if (ev.worker == 2) {
      EXPECT_LE(ev.time, 0.5 + 1e-9);
    }
  }
}

TEST(TimedFaultInjection, CrashWorksForDataAwareStrategies) {
  for (const char* name :
       {"DynamicOuter", "DynamicOuter2Phases", "SortedOuter"}) {
    OuterStrategyOptions options;
    options.phase2_fraction = 0.05;
    auto strategy = make_outer_strategy(name, OuterConfig{24}, 4, 2, options);
    Platform platform({10.0, 20.0, 40.0, 80.0});
    const TimedSimResult result = simulate_timed(
        *strategy, platform, with_faults({WorkerFault{0.2, 3, 0.0}}));
    EXPECT_EQ(result.total_tasks_done, 576u) << name;
    EXPECT_EQ(result.crashed_workers, 1u) << name;
  }
}

TEST(TimedFaultInjection, InTransitWorkOfCrashedWorkerIsRecovered) {
  // A deep lookahead keeps several assignments on the wire or queued on
  // the victim; all of them must come back through requeue.
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{20}, 2, 3);
  Platform platform({40.0, 40.0});
  TimedSimConfig config = with_faults({WorkerFault{0.3, 1, 0.0}});
  config.lookahead = 8;
  const TimedSimResult result = simulate_timed(*strategy, platform, config);
  EXPECT_EQ(result.total_tasks_done, 400u);
  EXPECT_EQ(result.crashed_workers, 1u);
  EXPECT_GE(result.requeued_tasks, 1u);
  EXPECT_EQ(strategy->unassigned_tasks(), 0u);
}

TEST(TimedFaultInjection, MultipleCrashesSurvivedByLastWorker) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{16}, 3, 4);
  Platform platform({30.0, 30.0, 30.0});
  const TimedSimResult result = simulate_timed(
      *strategy, platform,
      with_faults({WorkerFault{0.1, 0, 0.0}, WorkerFault{0.2, 1, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 256u);
  EXPECT_EQ(result.crashed_workers, 2u);
  EXPECT_GT(result.workers[2].tasks_done, 200u);
}

TEST(TimedFaultInjection, LateCrashAfterRetirementIsHarmless) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{10}, 2, 5);
  Platform platform({50.0, 50.0});
  const TimedSimResult result = simulate_timed(
      *strategy, platform, with_faults({WorkerFault{100.0, 0, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 100u);
  EXPECT_EQ(result.requeued_tasks, 0u);
}

TEST(TimedFaultInjection, StragglerSlowsButCompletes) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{30}, 2, 7);
  Platform platform({50.0, 50.0});
  const TimedSimResult slowed = simulate_timed(
      *strategy, platform, with_faults({WorkerFault{0.1, 1, 0.1}}));
  EXPECT_EQ(slowed.total_tasks_done, 900u);
  // Demand-driven balancing shifts work to the healthy worker.
  EXPECT_GT(slowed.workers[0].tasks_done, 2u * slowed.workers[1].tasks_done);
  EXPECT_EQ(slowed.crashed_workers, 0u);
}

TEST(TimedFaultInjection, PerturbationDriftsSpeeds) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{20}, 2, 8);
  Platform platform({40.0, 40.0});
  TimedSimConfig config;
  config.perturbation = PerturbationModel(10.0);
  const TimedSimResult result = simulate_timed(*strategy, platform, config);
  EXPECT_EQ(result.total_tasks_done, 400u);
  // With +-10% per-task drift the final speeds have left the base value.
  EXPECT_NE(result.workers[0].final_speed, 40.0);
}

TEST(TimedFaultInjection, WorkStealingCannotRequeueAndSaysSo) {
  auto strategy =
      make_outer_strategy("WorkStealingOuter", OuterConfig{16}, 2, 8);
  Platform platform({30.0, 30.0});
  EXPECT_THROW(simulate_timed(*strategy, platform,
                              with_faults({WorkerFault{0.1, 0, 0.0}})),
               std::invalid_argument);
}

TEST(TimedFaultInjection, RejectsMalformedFaultsViaSharedValidation) {
  // Same EventCore::validate_faults path as the flat engine.
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{8}, 2, 9);
  Platform platform({10.0, 10.0});
  EXPECT_THROW(simulate_timed(*strategy, platform,
                              with_faults({WorkerFault{0.1, 5, 0.0}})),
               std::invalid_argument);
  EXPECT_THROW(simulate_timed(*strategy, platform,
                              with_faults({WorkerFault{0.1, 0, 1.5}})),
               std::invalid_argument);
  EXPECT_THROW(simulate_timed(*strategy, platform,
                              with_faults({WorkerFault{-1.0, 0, 0.0}})),
               std::invalid_argument);
}

TEST(TimedFaultInjection, MetricsPublishedIncludingTimedExtras) {
  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{16}, 2, 10);
  Platform platform({30.0, 60.0});
  MetricsRegistry registry;
  TimedSimConfig config = with_faults({WorkerFault{0.2, 0, 0.0}});
  config.metrics = &registry;
  const TimedSimResult result = simulate_timed(*strategy, platform, config);
  // Shared EventCore counters/gauges...
  EXPECT_EQ(registry.counter("sim.tasks_done").value(),
            result.total_tasks_done);
  EXPECT_EQ(registry.counter("sim.requeued_tasks").value(),
            result.requeued_tasks);
  EXPECT_EQ(registry.counter("sim.crashed_workers").value(), 1u);
  EXPECT_EQ(registry.gauge("sim.makespan").value(), result.makespan);
  // ...plus the timed-only ones.
  EXPECT_EQ(registry.gauge("sim.link_busy_time").value(),
            result.link_busy_time);
  for (std::uint32_t k = 0; k < 2; ++k) {
    EXPECT_EQ(
        registry.gauge("worker." + std::to_string(k) + ".starved_time").value(),
        result.workers[k].starved_time);
  }
}

TEST(TimedFaultInjection, FlatAndTimedAgreeOnFaultAccounting) {
  // Same strategy seed, same crash script: the engines schedule
  // differently (comm timing) but must agree on conservation — all
  // tasks complete, exactly one worker dies.
  const std::vector<WorkerFault> faults = {WorkerFault{0.25, 1, 0.0}};
  auto flat = make_outer_strategy("DynamicOuter", OuterConfig{20}, 3, 11);
  Platform platform({20.0, 30.0, 50.0});
  SimConfig flat_config;
  flat_config.faults = faults;
  const SimResult a = simulate(*flat, platform, flat_config);

  auto timed = make_outer_strategy("DynamicOuter", OuterConfig{20}, 3, 11);
  const TimedSimResult b =
      simulate_timed(*timed, platform, with_faults(faults));
  EXPECT_EQ(a.total_tasks_done, b.total_tasks_done);
  EXPECT_EQ(a.crashed_workers, b.crashed_workers);
  // (Makespans are close but not ordered: the comm timing reshuffles
  // which tasks land on the victim, so the requeued sets differ.)
}

}  // namespace
}  // namespace hetsched
