// Fault-injection tests: crashes requeue work, stragglers shift it,
// and the kernels still complete exactly once.
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace hetsched {
namespace {

SimConfig with_faults(std::vector<WorkerFault> faults) {
  SimConfig config;
  config.faults = std::move(faults);
  return config;
}

TEST(FaultInjection, CrashedWorkerTasksAreRequeuedAndCompleted) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{30}, 3, 1);
  Platform platform({20.0, 30.0, 50.0});
  RecordingTrace trace;
  const SimResult result = simulate(
      *strategy, platform, with_faults({WorkerFault{0.5, 2, 0.0}}), &trace);
  EXPECT_EQ(result.total_tasks_done, 900u);
  EXPECT_EQ(result.crashed_workers, 1u);
  EXPECT_GE(result.requeued_tasks, 1u);
  // Every task completes exactly once despite the crash.
  std::set<TaskId> completed;
  for (const auto& ev : trace.completions()) {
    EXPECT_TRUE(completed.insert(ev.task).second);
  }
  EXPECT_EQ(completed.size(), 900u);
  // The dead worker does nothing after t = 0.5.
  for (const auto& ev : trace.completions()) {
    if (ev.worker == 2) {
      EXPECT_LE(ev.time, 0.5 + 1e-9);
    }
  }
}

TEST(FaultInjection, CrashWorksForDataAwareStrategies) {
  for (const char* name :
       {"DynamicOuter", "DynamicOuter2Phases", "SortedOuter"}) {
    OuterStrategyOptions options;
    options.phase2_fraction = 0.05;
    auto strategy = make_outer_strategy(name, OuterConfig{24}, 4, 2, options);
    Platform platform({10.0, 20.0, 40.0, 80.0});
    const SimResult result = simulate(
        *strategy, platform, with_faults({WorkerFault{0.2, 3, 0.0}}));
    EXPECT_EQ(result.total_tasks_done, 576u) << name;
    EXPECT_EQ(result.crashed_workers, 1u) << name;
  }
}

TEST(FaultInjection, CrashWorksForMatmul) {
  MatmulStrategyOptions options;
  options.phase2_fraction = 0.05;
  auto strategy =
      make_matmul_strategy("DynamicMatrix2Phases", MatmulConfig{8}, 3, 3,
                           options);
  Platform platform({20.0, 40.0, 60.0});
  const SimResult result =
      simulate(*strategy, platform, with_faults({WorkerFault{0.3, 1, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 512u);
}

TEST(FaultInjection, DynamicOuterLateCrashRequeueDrainsViaRandomFallback) {
  // Regression for crash-requeue liveness under DynamicOuter: a task
  // requeued late in the run has its row and column already in every
  // survivor's known sets, so dynamic_request can never re-allocate it
  // (it only pairs a *fresh* index against known ones). Only the random
  // fallback can reclaim it; the pool must still fully drain.
  Platform platform({30.0, 30.0, 30.0});
  auto probe = make_outer_strategy("DynamicOuter", OuterConfig{20}, 3, 11);
  const double makespan = simulate(*probe, platform).makespan;

  auto strategy = make_outer_strategy("DynamicOuter", OuterConfig{20}, 3, 11);
  const SimResult result =
      simulate(*strategy, platform,
               with_faults({WorkerFault{0.85 * makespan, 1, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 400u);
  EXPECT_EQ(result.crashed_workers, 1u);
  EXPECT_GE(result.requeued_tasks, 1u);
  EXPECT_EQ(strategy->unassigned_tasks(), 0u);
}

TEST(FaultInjection, DynamicMatrixLateCrashRequeueDrainsViaRandomFallback) {
  // Matmul analogue of the DynamicOuter liveness regression above: a
  // late-requeued task has all three of its indices in every survivor's
  // known sets, so the structured extension can never re-allocate it —
  // only the random fallback can. The pool must still fully drain.
  Platform platform({30.0, 30.0, 30.0});
  auto probe = make_matmul_strategy("DynamicMatrix", MatmulConfig{8}, 3, 13);
  const double makespan = simulate(*probe, platform).makespan;

  auto strategy = make_matmul_strategy("DynamicMatrix", MatmulConfig{8}, 3, 13);
  const SimResult result =
      simulate(*strategy, platform,
               with_faults({WorkerFault{0.85 * makespan, 1, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 512u);
  EXPECT_EQ(result.crashed_workers, 1u);
  EXPECT_GE(result.requeued_tasks, 1u);
  EXPECT_EQ(strategy->unassigned_tasks(), 0u);
}

TEST(FaultInjection, MultipleCrashesSurvivedByLastWorker) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{16}, 3, 4);
  Platform platform({30.0, 30.0, 30.0});
  const SimResult result = simulate(
      *strategy, platform,
      with_faults({WorkerFault{0.1, 0, 0.0}, WorkerFault{0.2, 1, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 256u);
  EXPECT_EQ(result.crashed_workers, 2u);
  // The survivor did the lion's share.
  EXPECT_GT(result.workers[2].tasks_done, 200u);
}

TEST(FaultInjection, LateCrashAfterRetirementIsHarmless) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{10}, 2, 5);
  Platform platform({50.0, 50.0});
  // The run finishes around t = 1; crash far later.
  const SimResult result = simulate(
      *strategy, platform, with_faults({WorkerFault{100.0, 0, 0.0}}));
  EXPECT_EQ(result.total_tasks_done, 100u);
  EXPECT_EQ(result.requeued_tasks, 0u);
}

TEST(FaultInjection, CrashCostsCommunication) {
  // The dead worker's cached blocks are lost; survivors must re-fetch
  // data for the requeued tasks, so volume can only grow.
  auto clean = make_outer_strategy("DynamicOuter", OuterConfig{40}, 4, 6);
  auto faulty = make_outer_strategy("DynamicOuter", OuterConfig{40}, 4, 6);
  Platform platform({25.0, 25.0, 25.0, 25.0});
  const SimResult a = simulate(*clean, platform);
  const SimResult b =
      simulate(*faulty, platform, with_faults({WorkerFault{0.5, 0, 0.0}}));
  EXPECT_EQ(a.total_tasks_done, b.total_tasks_done);
  EXPECT_GE(b.makespan, a.makespan);  // three workers finish the job
}

TEST(FaultInjection, StragglerSlowsButCompletes) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{30}, 2, 7);
  Platform platform({50.0, 50.0});
  const SimResult slowed = simulate(
      *strategy, platform, with_faults({WorkerFault{0.1, 1, 0.1}}));
  EXPECT_EQ(slowed.total_tasks_done, 900u);
  // Demand-driven balancing shifts work to the healthy worker.
  EXPECT_GT(slowed.workers[0].tasks_done, 2u * slowed.workers[1].tasks_done);
  EXPECT_EQ(slowed.crashed_workers, 0u);
}

TEST(FaultInjection, WorkStealingCannotRequeueAndSaysSo) {
  auto strategy =
      make_outer_strategy("WorkStealingOuter", OuterConfig{16}, 2, 8);
  Platform platform({30.0, 30.0});
  EXPECT_THROW(simulate(*strategy, platform,
                        with_faults({WorkerFault{0.1, 0, 0.0}})),
               std::invalid_argument);
}

TEST(FaultInjection, RejectsMalformedFaults) {
  auto strategy = make_outer_strategy("RandomOuter", OuterConfig{8}, 2, 9);
  Platform platform({10.0, 10.0});
  EXPECT_THROW(simulate(*strategy, platform,
                        with_faults({WorkerFault{0.1, 5, 0.0}})),
               std::invalid_argument);
  EXPECT_THROW(simulate(*strategy, platform,
                        with_faults({WorkerFault{0.1, 0, 1.5}})),
               std::invalid_argument);
  EXPECT_THROW(simulate(*strategy, platform,
                        with_faults({WorkerFault{-1.0, 0, 0.0}})),
               std::invalid_argument);
}

TEST(FaultInjection, RequeueRestoresPoolMembership) {
  // Direct strategy-level check of the requeue contract.
  auto strategy = make_outer_strategy("SortedOuter", OuterConfig{4}, 1, 10);
  const auto a = strategy->on_request(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(strategy->unassigned_tasks(), 15u);
  EXPECT_TRUE(strategy->requeue(a->tasks));
  EXPECT_EQ(strategy->unassigned_tasks(), 16u);
  // Lexicographic service sees the requeued task again.
  const auto b = strategy->on_request(0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tasks[0], a->tasks[0]);
}

}  // namespace
}  // namespace hetsched
