#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

namespace hetsched {
namespace {

/// Hands out one task per request from a shared countdown; used to
/// exercise pure demand-driven behaviour.
class CountdownStrategy final : public Strategy {
 public:
  CountdownStrategy(std::uint64_t tasks, std::uint32_t workers,
                    std::uint32_t blocks_per_task = 0)
      : total_(tasks), remaining_(tasks), workers_(workers),
        blocks_per_task_(blocks_per_task) {}

  std::string name() const override { return "Countdown"; }
  std::uint64_t total_tasks() const override { return total_; }
  std::uint64_t unassigned_tasks() const override { return remaining_; }
  std::uint32_t workers() const override { return workers_; }

  using Strategy::on_request;
  bool on_request(std::uint32_t worker, Assignment& out) override {
    out.clear();
    ++requests_[worker];
    if (remaining_ == 0) return false;
    --remaining_;
    out.tasks.push_back(remaining_);
    for (std::uint32_t b = 0; b < blocks_per_task_; ++b) {
      out.blocks.push_back(BlockRef{Operand::kVecA, b, 0});
    }
    return true;
  }

  std::map<std::uint32_t, int> requests_;

 private:
  std::uint64_t total_;
  std::uint64_t remaining_;
  std::uint32_t workers_;
  std::uint32_t blocks_per_task_;
};

/// Replays a scripted list of responses per worker.
class ScriptedStrategy final : public Strategy {
 public:
  explicit ScriptedStrategy(std::uint32_t workers) : scripts_(workers) {}

  void push(std::uint32_t worker, Assignment a) {
    scripts_[worker].push_back(std::move(a));
  }

  std::string name() const override { return "Scripted"; }
  std::uint64_t total_tasks() const override { return 0; }
  std::uint64_t unassigned_tasks() const override { return 0; }
  std::uint32_t workers() const override {
    return static_cast<std::uint32_t>(scripts_.size());
  }

  using Strategy::on_request;
  bool on_request(std::uint32_t worker, Assignment& out) override {
    out.clear();
    auto& script = scripts_[worker];
    if (script.empty()) return false;
    out = std::move(script.front());
    script.pop_front();
    return true;
  }

 private:
  std::vector<std::deque<Assignment>> scripts_;
};

TEST(Engine, SingleWorkerMakespanIsTasksOverSpeed) {
  CountdownStrategy strategy(10, 1);
  Platform platform({2.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 10u);
  EXPECT_NEAR(result.makespan, 5.0, 1e-9);
  EXPECT_EQ(result.workers[0].tasks_done, 10u);
  EXPECT_NEAR(result.workers[0].busy_time, 5.0, 1e-9);
}

TEST(Engine, DemandDrivenSplitFollowsSpeeds) {
  CountdownStrategy strategy(4000, 2);
  Platform platform({10.0, 30.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 4000u);
  // The 3x faster worker should take close to 3x the tasks.
  EXPECT_NEAR(static_cast<double>(result.workers[1].tasks_done),
              3.0 * static_cast<double>(result.workers[0].tasks_done),
              0.02 * 4000);
}

TEST(Engine, BlocksAreAccumulated) {
  CountdownStrategy strategy(10, 1, 3);
  Platform platform({1.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_blocks, 30u);
  EXPECT_EQ(result.workers[0].blocks_received, 30u);
}

TEST(Engine, ZeroTaskAssignmentLoopsIntoAnotherRequest) {
  ScriptedStrategy strategy(1);
  Assignment blocks_only;
  blocks_only.blocks.push_back(BlockRef{Operand::kVecA, 0, 0});
  strategy.push(0, blocks_only);
  Assignment with_task;
  with_task.tasks.push_back(7);
  strategy.push(0, with_task);
  Platform platform({1.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 1u);
  EXPECT_EQ(result.total_blocks, 1u);
}

TEST(Engine, MultiTaskAssignmentsRunSequentially) {
  ScriptedStrategy strategy(1);
  Assignment batch;
  batch.tasks = {1, 2, 3, 4};
  strategy.push(0, batch);
  Platform platform({4.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 4u);
  EXPECT_NEAR(result.makespan, 1.0, 1e-9);
}

TEST(Engine, TraceSeesEveryEvent) {
  CountdownStrategy strategy(5, 2);
  Platform platform({1.0, 1.0});
  RecordingTrace trace;
  const SimResult result = simulate(strategy, platform, {}, &trace);
  EXPECT_EQ(result.total_tasks_done, 5u);
  EXPECT_EQ(trace.completions().size(), 5u);
  // 5 task assignments + both workers receive a retirement.
  EXPECT_EQ(trace.assignments().size(), 5u);
  EXPECT_EQ(trace.retirements().size(), 2u);
}

TEST(Engine, CompletionTimesAreMonotoneInTrace) {
  CountdownStrategy strategy(100, 3);
  Platform platform({10.0, 20.0, 30.0});
  RecordingTrace trace;
  simulate(strategy, platform, {}, &trace);
  double last = 0.0;
  for (const auto& ev : trace.completions()) {
    EXPECT_GE(ev.time, last - 1e-12);
    last = ev.time;
  }
}

TEST(Engine, MismatchedWorkerCountThrows) {
  CountdownStrategy strategy(10, 2);
  Platform platform({1.0});
  EXPECT_THROW(simulate(strategy, platform), std::invalid_argument);
}

TEST(Engine, WorkerWithNoWorkRetiresCleanly) {
  // Zero tasks: every worker retires on its first request at t=0.
  CountdownStrategy strategy(0, 2);
  Platform platform({1.0, 2.0});
  RecordingTrace trace;
  const SimResult result = simulate(strategy, platform, {}, &trace);
  EXPECT_EQ(result.total_tasks_done, 0u);
  EXPECT_EQ(result.makespan, 0.0);
  EXPECT_EQ(trace.retirements().size(), 2u);
}

TEST(Engine, PerturbationChangesFinalSpeed) {
  CountdownStrategy strategy(1000, 1);
  Platform platform({100.0});
  SimConfig config;
  config.seed = 3;
  config.perturbation = PerturbationModel(20.0);
  const SimResult result = simulate(strategy, platform, config);
  EXPECT_NE(result.workers[0].final_speed, 100.0);
  EXPECT_GE(result.workers[0].final_speed, 25.0);
  EXPECT_LE(result.workers[0].final_speed, 400.0);
}

TEST(Engine, NoPerturbationKeepsSpeed) {
  CountdownStrategy strategy(100, 1);
  Platform platform({100.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_DOUBLE_EQ(result.workers[0].final_speed, 100.0);
}

TEST(Engine, DeterministicAcrossRuns) {
  SimConfig config;
  config.seed = 11;
  config.perturbation = PerturbationModel(5.0);
  Platform platform({10.0, 20.0, 70.0});
  CountdownStrategy s1(500, 3);
  CountdownStrategy s2(500, 3);
  const SimResult a = simulate(s1, platform, config);
  const SimResult b = simulate(s2, platform, config);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_blocks, b.total_blocks);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(a.workers[k].tasks_done, b.workers[k].tasks_done);
  }
}

TEST(Engine, FinishSpreadZeroForSingleWorker) {
  CountdownStrategy strategy(10, 1);
  Platform platform({1.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_DOUBLE_EQ(result.finish_spread(), 0.0);
}

TEST(Engine, FinishSpreadSmallForDemandDrivenWorkers) {
  // Demand-driven allocation keeps completion times within one task of
  // each other.
  CountdownStrategy strategy(10000, 4);
  Platform platform({10.0, 25.0, 40.0, 80.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_LT(result.finish_spread(), 0.01);
}

TEST(Engine, NormalizedVolumeDividesByBound) {
  CountdownStrategy strategy(10, 1, 2);
  Platform platform({1.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_DOUBLE_EQ(result.normalized_volume(10.0), 2.0);
}

TEST(Engine, MetricsCommBandwidthDerivedFromCommModel) {
  // Satellite of the EventCore refactor: the flat engine's comm_time
  // gauge estimate is derived from CommModel's default bandwidth, so
  // the two cannot drift apart.
  EXPECT_EQ(SimConfig{}.metrics_comm_bandwidth, CommModel{}.bandwidth);
}

}  // namespace
}  // namespace hetsched
