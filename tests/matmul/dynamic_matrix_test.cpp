#include "matmul/dynamic_matrix.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "matmul/matmul_factory.hpp"
#include "sim/trace.hpp"

namespace hetsched {
namespace {

TEST(DynamicMatrix, FirstRequestShipsThreeBlocksOneTask) {
  DynamicMatrixStrategy strategy(MatmulConfig{6}, 1, 1);
  const auto a = strategy.on_request(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->blocks.size(), 3u);  // A, B, C corner blocks
  EXPECT_EQ(a->tasks.size(), 1u);
  EXPECT_EQ(strategy.known_extent(0), 1u);
}

TEST(DynamicMatrix, KthRequestShips3Times2kMinus1Blocks) {
  // Single worker: extending y-1 -> y ships 3 * (2(y-1) + 1) blocks and
  // enables 3(y-1)^2 + 3(y-1) + 1 tasks.
  DynamicMatrixStrategy strategy(MatmulConfig{8}, 1, 2);
  for (std::uint32_t y = 1; y <= 8; ++y) {
    const auto a = strategy.on_request(0);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->blocks.size(), 3u * (2 * (y - 1) + 1));
    EXPECT_EQ(a->tasks.size(), 3u * (y - 1) * (y - 1) + 3 * (y - 1) + 1);
  }
  EXPECT_EQ(strategy.unassigned_tasks(), 0u);
  EXPECT_FALSE(strategy.on_request(0).has_value());
}

TEST(DynamicMatrix, BlockOperandsSplitEvenly) {
  DynamicMatrixStrategy strategy(MatmulConfig{10}, 1, 3);
  for (int step = 0; step < 5; ++step) {
    const auto a = strategy.on_request(0);
    ASSERT_TRUE(a.has_value());
    std::size_t na = 0, nb = 0, nc = 0;
    for (const auto& ref : a->blocks) {
      switch (ref.operand) {
        case Operand::kMatA: ++na; break;
        case Operand::kMatB: ++nb; break;
        case Operand::kMatC: ++nc; break;
        default: FAIL() << "vector operand from matmul strategy";
      }
    }
    EXPECT_EQ(na, nb);
    EXPECT_EQ(nb, nc);
  }
}

TEST(DynamicMatrix, EveryTaskMarkedExactlyOnceAcrossWorkers) {
  DynamicMatrixStrategy strategy(MatmulConfig{6}, 3, 4);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 3; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      for (const TaskId id : a->tasks) {
        EXPECT_TRUE(seen.insert(id).second) << "task assigned twice";
      }
    }
  }
  EXPECT_EQ(seen.size(), 216u);
}

TEST(DynamicMatrix, TasksLieInsideKnownCube) {
  DynamicMatrixStrategy strategy(MatmulConfig{7}, 1, 5);
  std::set<std::uint32_t> is, js, ks;
  while (auto a = strategy.on_request(0)) {
    for (const auto& ref : a->blocks) {
      switch (ref.operand) {
        case Operand::kMatA: is.insert(ref.row); ks.insert(ref.col); break;
        case Operand::kMatB: ks.insert(ref.row); js.insert(ref.col); break;
        case Operand::kMatC: is.insert(ref.row); js.insert(ref.col); break;
        default: break;
      }
    }
    for (const TaskId id : a->tasks) {
      const auto [i, j, k] = matmul_task_coords(7, id);
      EXPECT_TRUE(is.count(i));
      EXPECT_TRUE(js.count(j));
      EXPECT_TRUE(ks.count(k));
    }
  }
}

TEST(DynamicMatrix2Phases, SwitchesAtThreshold) {
  // n = 8 (512 tasks): a lone phase-1 worker marks 1+7+19+37+61+91 = 216
  // tasks after six extensions, leaving 296 <= 300 for phase 2 — the
  // threshold is crossed while the pool is provably non-empty.
  const std::uint64_t threshold = 300;
  DynamicMatrixStrategy strategy(MatmulConfig{8}, 2, 6, threshold);
  while (strategy.unassigned_tasks() > threshold) {
    ASSERT_TRUE(strategy.on_request(0).has_value());
  }
  std::uint64_t phase2 = 0;
  while (auto a = strategy.on_request(1)) {
    EXPECT_EQ(a->tasks.size(), 1u);
    EXPECT_LE(a->blocks.size(), 3u);
    ++phase2;
  }
  EXPECT_EQ(phase2, strategy.phase2_tasks_served());
  EXPECT_GT(phase2, 0u);
  EXPECT_LE(phase2, threshold);
}

TEST(DynamicMatrix2Phases, FullPhase2DegeneratesToRandom) {
  // Threshold > total tasks: phase 1 never runs (the switch rule is
  // strict, so threshold == total would still serve the first request
  // data-aware — see SwitchBoundaryIsStrict).
  DynamicMatrixStrategy strategy(MatmulConfig{4}, 1, 7, 65);
  std::set<TaskId> seen;
  while (auto a = strategy.on_request(0)) {
    ASSERT_EQ(a->tasks.size(), 1u);
    seen.insert(a->tasks[0]);
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(strategy.phase2_tasks_served(), 64u);
}

TEST(DynamicMatrix2Phases, SwitchBoundaryIsStrict) {
  // n = 8, single worker: request r allocates r^3 - (r-1)^3 tasks, so
  // after 3 requests exactly 512 - 27 = 485 remain. With
  // phase2_tasks = 485 request 4 arrives at the documented boundary
  // ("once *fewer than* 485 remain") and must still be data-aware:
  // 4^3 - 3^3 = 37 tasks in one batch, not 1.
  DynamicMatrixStrategy strategy(MatmulConfig{8}, 1, 7, 485);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(strategy.on_request(0).has_value());
  }
  ASSERT_EQ(strategy.unassigned_tasks(), 485u);
  EXPECT_EQ(strategy.current_phase(), 1);
  const auto boundary = strategy.on_request(0);
  ASSERT_TRUE(boundary.has_value());
  EXPECT_EQ(boundary->tasks.size(), 37u);
  EXPECT_EQ(strategy.phase2_tasks_served(), 0u);
  EXPECT_EQ(strategy.current_phase(), 2);
  const auto after = strategy.on_request(0);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->tasks.size(), 1u);
  EXPECT_EQ(strategy.phase2_tasks_served(), 1u);
}

TEST(MakeDynamicMatrix2Phases, RejectsBadFraction) {
  EXPECT_THROW(make_dynamic_matrix_2phases(MatmulConfig{4}, 1, 1, -0.1),
               std::invalid_argument);
  EXPECT_THROW(make_dynamic_matrix_2phases(MatmulConfig{4}, 1, 1, 2.0),
               std::invalid_argument);
}

TEST(MatmulFactory, BuildsEveryKnownStrategy) {
  for (const auto& name : matmul_strategy_names()) {
    MatmulStrategyOptions options;
    options.phase2_fraction = 0.05;
    const auto strategy =
        make_matmul_strategy(name, MatmulConfig{5}, 2, 1, options);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
    EXPECT_EQ(strategy->total_tasks(), 125u);
  }
}

TEST(MatmulFactory, RejectsUnknownName) {
  EXPECT_THROW(make_matmul_strategy("Nope", MatmulConfig{5}, 2, 1),
               std::invalid_argument);
}

TEST(DynamicMatrix, NamesDistinguishVariants) {
  DynamicMatrixStrategy pure(MatmulConfig{4}, 1, 1);
  DynamicMatrixStrategy two(MatmulConfig{4}, 1, 1, 10);
  EXPECT_EQ(pure.name(), "DynamicMatrix");
  EXPECT_EQ(two.name(), "DynamicMatrix2Phases");
}

TEST(DynamicMatrix, RejectsZeroWorkers) {
  EXPECT_THROW(DynamicMatrixStrategy(MatmulConfig{4}, 0, 1),
               std::invalid_argument);
}

// Single worker drains phase 1 completely, then crash-requeued tasks
// force the random fallback: those serves are fallback work, never
// phase-2 work, and the regime change is announced exactly once.
TEST(DynamicMatrix, RequeueFallbackCountsSeparatelyFromPhase2) {
  DynamicMatrixStrategy strategy(MatmulConfig{3}, 1, 5);
  RecordingTrace trace;
  double clock = 0.0;
  strategy.attach_observer(&trace, &clock);

  std::vector<TaskId> assigned;
  while (auto a = strategy.on_request(0)) {
    assigned.insert(assigned.end(), a->tasks.begin(), a->tasks.end());
  }
  ASSERT_EQ(assigned.size(), 27u);  // phase 1 alone drains the pool
  EXPECT_EQ(strategy.phase2_tasks_served(), 0u);
  EXPECT_EQ(strategy.fallback_tasks_served(), 0u);
  EXPECT_TRUE(trace.fallbacks().empty());

  const std::vector<TaskId> requeued(assigned.begin(), assigned.begin() + 4);
  ASSERT_TRUE(strategy.requeue(requeued));
  clock = 1.25;
  std::uint64_t served = 0;
  while (auto a = strategy.on_request(0)) {
    ASSERT_EQ(a->tasks.size(), 1u);
    ASSERT_TRUE(a->blocks.empty());  // the worker already owns all blocks
    ++served;
  }
  EXPECT_EQ(served, 4u);
  EXPECT_EQ(strategy.fallback_tasks_served(), 4u);
  EXPECT_EQ(strategy.phase2_tasks_served(), 0u);  // regression: was phase2
  ASSERT_EQ(trace.fallbacks().size(), 1u);
  EXPECT_EQ(trace.fallbacks()[0].time, 1.25);
  EXPECT_EQ(trace.fallbacks()[0].tasks_remaining, 4u);
  EXPECT_TRUE(trace.phase_switches().empty());
}

TEST(DynamicMatrix2Phases, PhaseSwitchAnnouncedOncePerRep) {
  DynamicMatrixStrategy strategy(MatmulConfig{8}, 1, 7, 485);
  RecordingTrace trace;
  double clock = 4.0;
  strategy.attach_observer(&trace, &clock);
  while (strategy.on_request(0).has_value()) {
  }
  ASSERT_EQ(trace.phase_switches().size(), 1u);
  EXPECT_EQ(trace.phase_switches()[0].time, 4.0);
  EXPECT_EQ(trace.phase_switches()[0].tasks_remaining, 448u);
  EXPECT_TRUE(trace.fallbacks().empty());

  ASSERT_TRUE(strategy.reset(7));
  while (strategy.on_request(0).has_value()) {
  }
  EXPECT_EQ(trace.phase_switches().size(), 2u);
}

}  // namespace
}  // namespace hetsched
