#include "matmul/adaptive_matmul.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/experiment.hpp"
#include "platform/lower_bound.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

TEST(AdaptiveMatmul, CompletesAllTasks) {
  AdaptiveMatmulStrategy strategy(MatmulConfig{12}, 6, 1);
  Rng rng(derive_stream(1, "speeds"));
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 6, rng);
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 1728u);
}

TEST(AdaptiveMatmul, EveryTaskServedOnce) {
  AdaptiveMatmulStrategy strategy(MatmulConfig{6}, 3, 2);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 3; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      for (const TaskId id : a->tasks) EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), 216u);
}

TEST(AdaptiveMatmul, SwitchesBeforeThePoolDrains) {
  AdaptiveMatmulStrategy strategy(MatmulConfig{24}, 16, 3);
  Rng rng(derive_stream(3, "speeds"));
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 16, rng);
  simulate(strategy, platform);
  EXPECT_TRUE(strategy.switched());
  EXPECT_GT(strategy.tasks_at_switch(), 50u);
  EXPECT_LT(strategy.tasks_at_switch(), 24u * 24u * 24u / 2u);
}

TEST(AdaptiveMatmul, MatchesTunedTwoPhaseWithinMargin) {
  ExperimentConfig tuned;
  tuned.kernel = Kernel::kMatmul;
  tuned.strategy = "DynamicMatrix2Phases";
  tuned.n = 30;
  tuned.p = 30;
  tuned.reps = 3;
  tuned.seed = 7;
  const double tuned_mean = run_experiment(tuned).normalized.mean;

  double adaptive_sum = 0.0;
  for (std::uint32_t r = 0; r < 3; ++r) {
    const std::uint64_t rep_seed = derive_stream(7, "rep." + std::to_string(r));
    Rng rng(derive_stream(rep_seed, "experiment.speeds"));
    const Platform platform =
        make_platform(UniformIntervalSpeeds(10.0, 100.0), 30, rng);
    AdaptiveMatmulStrategy strategy(MatmulConfig{30}, 30, rep_seed);
    const SimResult result = simulate(strategy, platform);
    adaptive_sum += result.normalized_volume(
        matmul_lower_bound(30, platform.relative_speeds()));
  }
  EXPECT_LT(adaptive_sum / 3.0, 1.15 * tuned_mean);
}

TEST(AdaptiveMatmul, SupportsRequeue) {
  AdaptiveMatmulStrategy strategy(MatmulConfig{8}, 2, 4);
  Platform platform({20.0, 40.0});
  SimConfig config;
  config.faults.push_back(WorkerFault{0.5, 0, 0.0});
  const SimResult result = simulate(strategy, platform, config);
  EXPECT_EQ(result.total_tasks_done, 512u);
}

TEST(AdaptiveMatmul, RejectsBadParameters) {
  EXPECT_THROW(AdaptiveMatmulStrategy(MatmulConfig{6}, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveMatmulStrategy(MatmulConfig{6}, 1, 1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
