#include "matmul/matmul_variants.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "matmul/dynamic_matrix.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace hetsched {
namespace {

TEST(PerWorkerSwitchMatmul, ThresholdsFollowSpeeds) {
  const std::vector<double> speeds{10.0, 90.0};
  PerWorkerSwitchMatmulStrategy strategy(MatmulConfig{20}, speeds, 1, 3.0);
  EXPECT_GT(strategy.switch_extent(1), strategy.switch_extent(0));
  EXPECT_GT(strategy.switch_extent(0), 0u);
}

TEST(PerWorkerSwitchMatmul, CompletesAllTasks) {
  const std::vector<double> speeds{15.0, 45.0, 80.0};
  PerWorkerSwitchMatmulStrategy strategy(MatmulConfig{10}, speeds, 2, 3.0);
  const Platform platform(speeds);
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 1000u);
}

TEST(PerWorkerSwitchMatmul, EveryTaskServedOnce) {
  const std::vector<double> speeds{20.0, 60.0};
  PerWorkerSwitchMatmulStrategy strategy(MatmulConfig{7}, speeds, 3, 3.0);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 2; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      for (const TaskId id : a->tasks) EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), 343u);
}

TEST(PerWorkerSwitchMatmul, VolumeComparableToGlobalSwitch) {
  Rng rng(derive_stream(5, "speeds"));
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 16, rng);
  const double beta = 2.8;

  PerWorkerSwitchMatmulStrategy aware(MatmulConfig{20}, platform.speeds(), 7,
                                      beta);
  const SimResult a = simulate(aware, platform);

  DynamicMatrixStrategy global(
      MatmulConfig{20}, 16, 7,
      static_cast<std::uint64_t>(std::exp(-beta) * 8000.0));
  const SimResult b = simulate(global, platform);

  EXPECT_NEAR(static_cast<double>(a.total_blocks),
              static_cast<double>(b.total_blocks),
              0.2 * static_cast<double>(b.total_blocks));
}

TEST(PerWorkerSwitchMatmul, RejectsBadInputs) {
  EXPECT_THROW(PerWorkerSwitchMatmulStrategy(MatmulConfig{5}, {}, 1, 3.0),
               std::invalid_argument);
  EXPECT_THROW(
      PerWorkerSwitchMatmulStrategy(MatmulConfig{5}, {1.0}, 1, 0.0),
      std::invalid_argument);
}

TEST(BoundedLruMatmul, UnboundedCacheNeverRefetches) {
  const std::uint32_t n = 8;
  BoundedLruMatmulStrategy strategy(MatmulConfig{n}, 2, 3, 3 * n * n);
  const Platform platform({20.0, 60.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 512u);
  EXPECT_EQ(strategy.refetches(), 0u);
}

TEST(BoundedLruMatmul, TinyCacheStillCompletes) {
  BoundedLruMatmulStrategy strategy(MatmulConfig{6}, 2, 4, 3);
  const Platform platform({10.0, 40.0});
  const SimResult result = simulate(strategy, platform);
  EXPECT_EQ(result.total_tasks_done, 216u);
  EXPECT_GT(strategy.refetches(), 0u);
}

TEST(BoundedLruMatmul, SmallerCachesCostMore) {
  const Platform platform({10.0, 30.0, 60.0});
  std::uint64_t prev = 0;
  for (const std::uint32_t capacity : {192u, 48u, 12u, 3u}) {
    BoundedLruMatmulStrategy strategy(MatmulConfig{8}, 3, 5, capacity);
    const SimResult result = simulate(strategy, platform);
    EXPECT_EQ(result.total_tasks_done, 512u);
    if (prev != 0) {
      EXPECT_GE(result.total_blocks, prev);
    }
    prev = result.total_blocks;
  }
}

TEST(BoundedLruMatmul, EveryTaskServedOnce) {
  BoundedLruMatmulStrategy strategy(MatmulConfig{5}, 2, 6, 20);
  std::set<TaskId> seen;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t w = 0; w < 2; ++w) {
      const auto a = strategy.on_request(w);
      if (!a.has_value()) continue;
      progress = true;
      for (const TaskId id : a->tasks) EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), 125u);
}

TEST(BoundedLruMatmul, RejectsBadInputs) {
  EXPECT_THROW(BoundedLruMatmulStrategy(MatmulConfig{5}, 0, 1, 10),
               std::invalid_argument);
  EXPECT_THROW(BoundedLruMatmulStrategy(MatmulConfig{5}, 1, 1, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
