#include <gtest/gtest.h>

#include <set>

#include "matmul/random_matrix.hpp"
#include "matmul/sorted_matrix.hpp"

namespace hetsched {
namespace {

TEST(SortedMatrix, ServesTasksInLexicographicOrder) {
  SortedMatrixStrategy strategy(MatmulConfig{3}, 1);
  for (TaskId expect = 0; expect < 27; ++expect) {
    const auto a = strategy.on_request(0);
    ASSERT_TRUE(a.has_value());
    ASSERT_EQ(a->tasks.size(), 1u);
    EXPECT_EQ(a->tasks[0], expect);
  }
  EXPECT_FALSE(strategy.on_request(0).has_value());
}

TEST(SortedMatrix, FirstTaskShipsThreeBlocks) {
  SortedMatrixStrategy strategy(MatmulConfig{4}, 1);
  const auto a = strategy.on_request(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->blocks.size(), 3u);
}

TEST(SortedMatrix, SecondTaskOfSameRowReusesAandC) {
  SortedMatrixStrategy strategy(MatmulConfig{4}, 1);
  strategy.on_request(0);  // (0,0,0): ships A00, B00, C00
  const auto a = strategy.on_request(0);  // (0,0,1): ships A01, B10 only
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->blocks.size(), 2u);
  for (const auto& ref : a->blocks) {
    EXPECT_NE(ref.operand, Operand::kMatC);
  }
}

TEST(RandomMatrix, ServesEveryTaskExactlyOnce) {
  RandomMatrixStrategy strategy(MatmulConfig{5}, 1, 17);
  std::set<TaskId> seen;
  while (auto a = strategy.on_request(0)) {
    ASSERT_EQ(a->tasks.size(), 1u);
    EXPECT_TRUE(seen.insert(a->tasks[0]).second);
  }
  EXPECT_EQ(seen.size(), 125u);
}

TEST(RandomMatrix, NeverShipsSameBlockTwice) {
  RandomMatrixStrategy strategy(MatmulConfig{6}, 1, 23);
  std::set<std::tuple<int, std::uint32_t, std::uint32_t>> shipped;
  while (auto a = strategy.on_request(0)) {
    for (const auto& ref : a->blocks) {
      EXPECT_TRUE(shipped
                      .insert({static_cast<int>(ref.operand), ref.row,
                               ref.col})
                      .second);
    }
  }
  // A single worker eventually owns all 3 n^2 blocks.
  EXPECT_EQ(shipped.size(), 3u * 36u);
}

TEST(RandomMatrix, AtMostThreeBlocksPerTask) {
  RandomMatrixStrategy strategy(MatmulConfig{6}, 2, 29);
  for (int step = 0; step < 100; ++step) {
    const auto a = strategy.on_request(step % 2);
    if (!a.has_value()) break;
    EXPECT_LE(a->blocks.size(), 3u);
  }
}

TEST(RandomMatrix, SameSeedSameSequence) {
  RandomMatrixStrategy a(MatmulConfig{5}, 1, 5);
  RandomMatrixStrategy b(MatmulConfig{5}, 1, 5);
  for (int step = 0; step < 50; ++step) {
    const auto ta = a.on_request(0);
    const auto tb = b.on_request(0);
    ASSERT_TRUE(ta.has_value() && tb.has_value());
    EXPECT_EQ(ta->tasks[0], tb->tasks[0]);
  }
}

TEST(PointwiseMatmul, CountsAreConsistent) {
  RandomMatrixStrategy strategy(MatmulConfig{4}, 3, 31);
  EXPECT_EQ(strategy.total_tasks(), 64u);
  EXPECT_EQ(strategy.unassigned_tasks(), 64u);
  EXPECT_EQ(strategy.workers(), 3u);
  strategy.on_request(1);
  EXPECT_EQ(strategy.unassigned_tasks(), 63u);
}

TEST(ChargeMatmulTaskBlocks, ChargesOnlyMissing) {
  MatmulWorkerBlocks blocks(4);
  Assignment first;
  charge_matmul_task_blocks(4, 1, 2, 3, blocks, first);
  EXPECT_EQ(first.blocks.size(), 3u);
  Assignment second;
  charge_matmul_task_blocks(4, 1, 2, 3, blocks, second);
  EXPECT_TRUE(second.blocks.empty());
  // Shares C_{1,2} but needs fresh A and B.
  Assignment third;
  charge_matmul_task_blocks(4, 1, 2, 0, blocks, third);
  EXPECT_EQ(third.blocks.size(), 2u);
}

}  // namespace
}  // namespace hetsched
