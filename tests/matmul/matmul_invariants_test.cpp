// End-to-end property tests for matrix-multiply strategies under the
// discrete-event engine.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/experiment.hpp"
#include "matmul/matmul_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace hetsched {
namespace {

struct MatmulCase {
  std::string strategy;
  std::uint32_t n;
  std::uint32_t p;
};

class MatmulInvariantTest : public ::testing::TestWithParam<MatmulCase> {};

TEST_P(MatmulInvariantTest, SimulationSatisfiesKernelInvariants) {
  const MatmulCase& c = GetParam();
  MatmulStrategyOptions options;
  options.phase2_fraction = 0.05;
  auto strategy = make_matmul_strategy(c.strategy, MatmulConfig{c.n}, c.p,
                                       c.n * 977 + c.p, options);

  Rng rng(derive_stream(c.n * 2000 + c.p, "invariant.speeds"));
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), c.p, rng);

  RecordingTrace trace;
  const SimResult result = simulate(*strategy, platform, {}, &trace);

  // 1. Every task completes exactly once.
  const std::uint64_t total =
      static_cast<std::uint64_t>(c.n) * c.n * c.n;
  EXPECT_EQ(result.total_tasks_done, total);
  std::set<TaskId> completed;
  for (const auto& ev : trace.completions()) {
    EXPECT_TRUE(completed.insert(ev.task).second);
  }
  EXPECT_EQ(completed.size(), total);

  // 2. Per-worker bound: computing t tasks requires index sets with
  //    |I||J||K| >= t, so at least 3 t^(2/3) blocks (AM-GM over the
  //    three face areas).
  std::vector<std::uint64_t> tasks_per_worker(c.p, 0);
  for (const auto& ev : trace.completions()) ++tasks_per_worker[ev.worker];
  for (std::uint32_t w = 0; w < c.p; ++w) {
    const double t = static_cast<double>(tasks_per_worker[w]);
    EXPECT_GE(static_cast<double>(result.workers[w].blocks_received) + 1e-9,
              3.0 * std::pow(t, 2.0 / 3.0))
        << "worker " << w;
  }

  // 3. Nobody receives more than all 3 n^2 blocks.
  for (std::uint32_t w = 0; w < c.p; ++w) {
    EXPECT_LE(result.workers[w].blocks_received,
              3u * static_cast<std::uint64_t>(c.n) * c.n);
  }

  // 4. Demand-driven finish times cluster — meaningful only when every
  //    worker gets enough tasks to amortize end-game idling.
  if (total / c.p >= 40) {
    EXPECT_LT(result.finish_spread(), 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MatmulInvariantTest,
    ::testing::Values(MatmulCase{"RandomMatrix", 8, 4},
                      MatmulCase{"RandomMatrix", 10, 1},
                      MatmulCase{"SortedMatrix", 8, 4},
                      MatmulCase{"DynamicMatrix", 8, 4},
                      MatmulCase{"DynamicMatrix", 10, 1},
                      MatmulCase{"DynamicMatrix", 6, 12},
                      MatmulCase{"DynamicMatrix2Phases", 8, 4},
                      MatmulCase{"DynamicMatrix2Phases", 10, 1},
                      MatmulCase{"DynamicMatrix2Phases", 6, 12}),
    [](const auto& info) {
      return info.param.strategy + "_n" + std::to_string(info.param.n) + "_p" +
             std::to_string(info.param.p);
    });

TEST(MatmulOrdering, DataAwareBeatsObliviousOnHeterogeneousPlatform) {
  ExperimentConfig base;
  base.kernel = Kernel::kMatmul;
  base.n = 20;
  base.p = 16;
  base.reps = 3;
  base.seed = 99;

  auto normalized = [&](const std::string& name) {
    ExperimentConfig config = base;
    config.strategy = name;
    return run_experiment(config).normalized.mean;
  };

  const double random = normalized("RandomMatrix");
  const double dynamic = normalized("DynamicMatrix");
  const double two_phase = normalized("DynamicMatrix2Phases");
  EXPECT_LT(dynamic, random);
  EXPECT_LT(two_phase, dynamic);
  EXPECT_GT(two_phase, 1.0);
}

TEST(MatmulOrdering, TrivialSingleTaskInstance) {
  for (const auto& name : matmul_strategy_names()) {
    MatmulStrategyOptions options;
    options.phase2_fraction = 0.5;
    auto strategy = make_matmul_strategy(name, MatmulConfig{1}, 2, 3, options);
    const Platform platform({10.0, 20.0});
    const SimResult result = simulate(*strategy, platform);
    EXPECT_EQ(result.total_tasks_done, 1u) << name;
    EXPECT_EQ(result.total_blocks, 3u) << name;
  }
}

}  // namespace
}  // namespace hetsched
