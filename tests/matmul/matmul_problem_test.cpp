#include "matmul/matmul_problem.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hetsched {
namespace {

TEST(MatmulProblem, TaskCountIsNCubed) {
  EXPECT_EQ(MatmulConfig{40}.total_tasks(), 64000u);
  EXPECT_EQ(MatmulConfig{100}.total_tasks(), 1000000u);
  EXPECT_EQ(MatmulConfig{1}.total_tasks(), 1u);
}

TEST(MatmulProblem, TaskIdRoundTrips) {
  const std::uint32_t n = 11;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t k = 0; k < n; ++k) {
        const TaskId id = matmul_task_id(n, i, j, k);
        const auto [ri, rj, rk] = matmul_task_coords(n, id);
        EXPECT_EQ(ri, i);
        EXPECT_EQ(rj, j);
        EXPECT_EQ(rk, k);
      }
    }
  }
}

TEST(MatmulProblem, TaskIdsAreDenseAndUnique) {
  const std::uint32_t n = 7;
  std::vector<bool> seen(n * n * n, false);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t k = 0; k < n; ++k) {
        const TaskId id = matmul_task_id(n, i, j, k);
        ASSERT_LT(id, seen.size());
        EXPECT_FALSE(seen[id]);
        seen[id] = true;
      }
    }
  }
}

TEST(MatmulProblem, BlockIndexIsRowMajor) {
  EXPECT_EQ(block_index(10, 0, 0), 0u);
  EXPECT_EQ(block_index(10, 0, 9), 9u);
  EXPECT_EQ(block_index(10, 1, 0), 10u);
  EXPECT_EQ(block_index(10, 9, 9), 99u);
}

TEST(MatmulProblem, ValidateAcceptsPaperSizes) {
  EXPECT_NO_THROW(validate(MatmulConfig{40}));
  EXPECT_NO_THROW(validate(MatmulConfig{100}));
  // The paper's largest instance (figure 5's N/l = 1000 counterpart):
  // 10^9 tasks, held by TaskPool's compact layout.
  EXPECT_NO_THROW(validate(MatmulConfig{1000}));
}

TEST(MatmulProblem, ValidateRejectsDegenerate) {
  EXPECT_THROW(validate(MatmulConfig{0}), std::invalid_argument);
  EXPECT_THROW(validate(MatmulConfig{1025}), std::invalid_argument);
}

}  // namespace
}  // namespace hetsched
