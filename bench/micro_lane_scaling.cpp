// Lane-count scaling curves for the intra-rep lane team
// (common/lane_team.hpp): how the three work shapes that ride the
// lanes — word-parallel frontier scans, word-level batch retirement,
// and per-lane output fill + merge — scale at 1/2/4/8 lanes, plus the
// end-to-end request drains they compose into (fig10-sized matmul,
// fig05-sized outer, and a capped N/l = 1000 matmul slice of the
// large-N hot path).
//
// Writes LANE_SCALING.json; the checked-in reference lives at
// bench/baselines/lane_scaling.json. The parallelism budget is forced
// to 16 for the duration so the requested lanes are granted on any
// runner; on hosts with fewer cores than lanes the curve honestly
// degrades (the dispatch overhead stays, the parallelism doesn't),
// which is exactly what the baseline should record. Outputs are
// bit-identical across the lane axis by construction (pinned by
// tests/integration/lane_identity_test.cpp); this bench measures the
// wall-clock side of that contract.
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/dynamic_bitset.hpp"
#include "common/json.hpp"
#include "common/lane_team.hpp"
#include "core/experiment.hpp"
#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/strategy.hpp"

namespace {

using namespace hetsched;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kWords = 1 << 15;  // 2 MiB bitset: larger than L1/L2
constexpr std::size_t kBits = kWords << 6;
constexpr std::uint64_t kChunkWords = 8;  // the strategies' unit granularity

/// Work shape 1 — frontier scan: AND-NOT gather of a mask against a
/// shared absent-set, chunk-split across lanes. ns per mask word.
double frontier_scan_ns_per_word(LaneTeam& team) {
  DynamicBitset mask(kBits);
  for (std::size_t p = 0; p < kBits; p += 3) mask.set(p);
  DynamicBitset absent(kBits);
  for (std::size_t p = 0; p < kBits; p += 7) absent.set(p);
  absent.materialize_all();
  const std::uint64_t chunks = kWords / kChunkWords;
  const std::uint32_t lanes = team.lanes();
  std::vector<std::uint64_t> found(lanes, 0);
  std::uint64_t rounds = 0;
  double elapsed = 0.0;
  while (elapsed < 0.3) {
    const double start = now_sec();
    team.run([&](std::uint32_t lane) {
      std::uint64_t local = 0;
      const auto [c0, c1] = LaneTeam::split(chunks, lanes, lane);
      for (std::uint64_t c = c0; c < c1; ++c) {
        for_each_masked_present_word_relaxed(
            mask, absent, 0, c * kChunkWords, (c + 1) * kChunkWords,
            [&](std::size_t, std::uint64_t hits) {
              local += static_cast<std::uint64_t>(std::popcount(hits));
            });
      }
      found[lane] += local;
    });
    elapsed += now_sec() - start;
    ++rounds;
  }
  std::uint64_t sink = 0;
  for (const auto f : found) sink += f;
  if (sink == 0) std::cerr << "";
  return elapsed * 1e9 / static_cast<double>(rounds * kWords);
}

/// Work shape 2 — batch retirement: relaxed word-level ORs into a
/// shared presence set, chunk-split across lanes. ns per word written.
double batch_retire_ns_per_word(LaneTeam& team) {
  DynamicBitset presence(kBits);
  presence.materialize_all();
  const std::uint64_t chunks = kWords / kChunkWords;
  const std::uint32_t lanes = team.lanes();
  std::uint64_t rounds = 0;
  double elapsed = 0.0;
  while (elapsed < 0.3) {
    const double start = now_sec();
    team.run([&](std::uint32_t lane) {
      const auto [c0, c1] = LaneTeam::split(chunks, lanes, lane);
      for (std::uint64_t c = c0; c < c1; ++c) {
        for (std::uint64_t w = c * kChunkWords; w < (c + 1) * kChunkWords;
             ++w) {
          presence.or_shifted_relaxed(w << 6, 0x5555555555555555ull);
        }
      }
    });
    elapsed += now_sec() - start;
    ++rounds;
  }
  return elapsed * 1e9 / static_cast<double>(rounds * kWords);
}

/// Work shape 3 — output fill: per-lane scratch segments filled from a
/// split id range, merged in lane order (the Assignment tail of every
/// laned request). ns per task id moved.
double output_fill_ns_per_task(LaneTeam& team) {
  constexpr std::uint64_t kIds = 1 << 18;
  const std::uint32_t lanes = team.lanes();
  std::vector<std::vector<TaskId>> segs(lanes);
  std::vector<TaskId> out;
  out.reserve(kIds);
  std::uint64_t rounds = 0;
  double elapsed = 0.0;
  while (elapsed < 0.3) {
    const double start = now_sec();
    team.run([&](std::uint32_t lane) {
      auto& seg = segs[lane];
      seg.clear();
      const auto [b, e] = LaneTeam::split(kIds, lanes, lane);
      for (std::uint64_t id = b; id < e; ++id) seg.push_back(id);
    });
    out.clear();
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      out.insert(out.end(), segs[lane].begin(), segs[lane].end());
    }
    elapsed += now_sec() - start;
    ++rounds;
  }
  if (out.size() != kIds) std::cerr << "";
  return elapsed * 1e9 / static_cast<double>(rounds * kIds);
}

/// End-to-end: ns per data-aware request on a drain capped at
/// `max_requests` (0 = to exhaustion). The large-N configs cap the
/// drain to the structured phase the lanes accelerate; the RNG stream
/// and outputs are identical across the lane axis.
double drain_ns_per_request(Kernel kernel, const std::string& name,
                            std::uint32_t n, std::uint32_t workers,
                            std::uint32_t lanes, std::uint64_t max_requests) {
  std::unique_ptr<Strategy> strategy;
  if (kernel == Kernel::kOuter) {
    OuterStrategyOptions options;
    options.lanes = lanes;
    strategy = make_outer_strategy(name, OuterConfig{n}, workers, 42, options);
  } else {
    MatmulStrategyOptions options;
    options.lanes = lanes;
    strategy = make_matmul_strategy(name, MatmulConfig{n}, workers, 42, options);
  }
  strategy->prepare_lanes();
  Assignment scratch;
  std::uint32_t next_worker = 0;
  std::uint64_t requests = 0;
  std::uint64_t sink = 0;
  const double start = now_sec();
  while ((max_requests == 0 || requests < max_requests) &&
         strategy->on_request(next_worker, scratch)) {
    sink += scratch.tasks.size();
    ++requests;
    next_worker = (next_worker + 1) % workers;
  }
  const double elapsed = now_sec() - start;
  if (sink == 0) std::cerr << "";
  return elapsed * 1e9 / static_cast<double>(requests);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "LANE_SCALING.json");
  const std::vector<std::uint32_t> lane_grid = {1, 2, 4, 8};

  // Force a budget that covers the widest team; restored before exit.
  set_parallel_budget_capacity(16);

  std::vector<std::pair<std::string, std::vector<double>>> kernels;
  kernels.emplace_back("frontier_scan_ns_per_word", std::vector<double>{});
  kernels.emplace_back("batch_retire_ns_per_word", std::vector<double>{});
  kernels.emplace_back("output_fill_ns_per_task", std::vector<double>{});
  for (const std::uint32_t lanes : lane_grid) {
    LaneTeam team(lanes);
    if (team.lanes() != lanes) {
      std::cerr << "# warning: requested " << lanes << " lanes, granted "
                << team.lanes() << "\n";
    }
    kernels[0].second.push_back(frontier_scan_ns_per_word(team));
    kernels[1].second.push_back(batch_retire_ns_per_word(team));
    kernels[2].second.push_back(output_fill_ns_per_task(team));
    std::cerr << "# lanes=" << lanes
              << " scan=" << kernels[0].second.back()
              << " retire=" << kernels[1].second.back()
              << " fill=" << kernels[2].second.back() << " ns\n";
  }

  struct DrainCase {
    const char* label;
    Kernel kernel;
    const char* strategy;
    std::uint32_t n;
    std::uint32_t workers;
    std::uint64_t max_requests;
  };
  const DrainCase drains[] = {
      // fig10-sized matmul: the paper's N/l = 100 protocol shape.
      {"fig10_mm_n100", Kernel::kMatmul, "DynamicMatrix", 100, 16, 3000},
      // fig05-sized outer: N/l = 1000, full structured drain.
      {"fig05_outer_n1000", Kernel::kOuter, "DynamicOuter", 1000, 16, 3000},
      // The large-N hot path: N/l = 1000 matmul, few workers so the
      // known sets (and with them the per-request scan width) grow
      // fast. Capped: the point is the structured phase's cost curve.
      {"mm_n1000_capped", Kernel::kMatmul, "DynamicMatrix", 1000, 4, 600},
  };
  std::vector<std::pair<std::string, std::vector<double>>> drain_results;
  for (const DrainCase& d : drains) {
    std::vector<double> per_lane;
    for (const std::uint32_t lanes : lane_grid) {
      per_lane.push_back(drain_ns_per_request(d.kernel, d.strategy, d.n,
                                              d.workers, lanes,
                                              d.max_requests));
      std::cerr << "# drain " << d.label << " lanes=" << lanes << ": "
                << per_lane.back() << " ns/request\n";
    }
    drain_results.emplace_back(d.label, std::move(per_lane));
  }

  set_parallel_budget_capacity(0);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", "hetsched-lane-scaling/1");
  json.field("host_hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  const auto emit = [&](const char* key, const auto& rows) {
    json.key(key);
    json.begin_object();
    for (const auto& [label, per_lane] : rows) {
      json.key(label);
      json.begin_object();
      for (std::size_t x = 0; x < per_lane.size(); ++x) {
        json.field("lanes" + std::to_string(lane_grid[x]), per_lane[x]);
      }
      // Scaling factor vs one lane (> 1 = speedup) for quick reading.
      for (std::size_t x = 1; x < per_lane.size(); ++x) {
        json.field("speedup_lanes" + std::to_string(lane_grid[x]),
                   per_lane[0] / per_lane[x]);
      }
      json.end_object();
    }
    json.end_object();
  };
  emit("kernels", kernels);
  emit("drains", drain_results);
  json.end_object();
  out << "\n";
  std::cerr << "# wrote " << out_path << "\n";
  return 0;
}
