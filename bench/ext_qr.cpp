// Extension: dynamic scheduling of tiled QR (the paper's other named
// next step). Same policy comparison as ext_cholesky — QR's flat-tree
// panel reduction serializes more of the graph, so the critical path is
// longer and locality matters differently.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dag/dag_engine.hpp"
#include "dag/qr.hpp"
#include "platform/platform.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto tiles = static_cast<std::uint32_t>(args.get_int("tiles", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {4, 8, 16, 32}));

  const QrGraph qr = build_qr_graph(tiles);
  bench::print_header(
      "Extension (QR)", "dynamic DAG scheduling policies on tiled QR",
      "T=" + std::to_string(tiles) + " tiles, " +
          std::to_string(qr.graph.num_tasks()) + " tasks, critical path " +
          std::to_string(qr.graph.critical_path()) + ", reps=" +
          std::to_string(reps));

  std::vector<std::string> columns{"p"};
  for (const auto& name : dag_policy_names()) {
    columns.push_back(name + ".transfers");
    columns.push_back(name + ".makespan_vs_lb");
  }
  CsvWriter csv(std::cout, columns);

  for (const std::uint32_t p : ps) {
    std::vector<double> cells{static_cast<double>(p)};
    for (const auto& name : dag_policy_names()) {
      RunningStats transfers, inflation;
      for (std::uint32_t r = 0; r < reps; ++r) {
        const std::uint64_t rep_seed =
            derive_stream(seed, "rep." + std::to_string(r));
        Rng speed_rng(derive_stream(rep_seed, "speeds"));
        const Platform platform =
            make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);
        auto policy = make_dag_policy(name, rep_seed);
        const DagSimResult result = simulate_dag(qr.graph, platform, *policy);
        transfers.push(static_cast<double>(result.total_transfers));
        inflation.push(result.makespan /
                       DagSimResult::makespan_lower_bound(qr.graph, platform));
      }
      cells.push_back(transfers.mean());
      cells.push_back(inflation.mean());
    }
    csv.row(cells);
  }
  return 0;
}
