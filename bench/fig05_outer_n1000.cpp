// Figure 5: all outer-product strategies plus the analysis curve for
// large vectors, N/l = 1000 blocks (10^6 tasks). The gap between
// data-oblivious and data-aware strategies widens markedly with N.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 1000));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 3));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps =
      bench::to_u32(args.get_int_list("p", {50, 100, 200, 300}));

  bench::print_header("Figure 5",
                      "outer product, large vectors, all strategies + analysis",
                      "n=" + std::to_string(n) + " blocks, reps=" +
                          std::to_string(reps));

  const auto points = sweep_worker_count(
      Kernel::kOuter, n, ps, paper_default_scenario(),
      {"DynamicOuter2Phases", "DynamicOuter", "RandomOuter", "SortedOuter"},
      true, seed, reps);
  print_sweep_csv(points, "p", std::cout);
  return 0;
}
