// Figure 1: comparison of random and data-aware dynamic strategies for
// the outer product, vectors of N/l = 100 blocks, speeds U[10,100].
// Series: normalized communication vs worker count.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", bench::default_p_grid()));

  bench::print_header(
      "Figure 1", "outer product, data-aware vs random strategies",
      "n=" + std::to_string(n) + " blocks, speeds U[10,100], reps=" +
          std::to_string(reps));

  const auto points = sweep_worker_count(
      Kernel::kOuter, n, ps, paper_default_scenario(),
      {"RandomOuter", "SortedOuter", "DynamicOuter"}, false, seed, reps);
  print_sweep_csv(points, "p", std::cout);
  bench::maybe_dump_trajectory(args, Kernel::kOuter, n,
                               paper_default_scenario(), seed);
  return 0;
}
