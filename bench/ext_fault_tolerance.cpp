// Extension: fault tolerance. The paper motivates dynamic schedulers
// with MapReduce-style resilience ("on-line detection of nodes that
// perform poorly... re-assign tasks"). This bench injects crashes and
// stragglers into DynamicOuter2Phases runs and measures the price:
// extra communication from lost caches and makespan inflation versus
// the fault-free run with the same seeds. With --timed the same fault
// scripts run through the comm-timed engine (shared EventCore), where
// a crash additionally forfeits the victim's in-transit prefetches.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "outer/outer_factory.hpp"
#include "platform/lower_bound.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/engine_timed.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const bool timed = args.get_bool("timed", false);

  bench::print_header(
      "Extension (faults)", "crashes and stragglers under demand-driven "
                            "scheduling",
      std::string("DynamicOuter2Phases, n=") + std::to_string(n) + ", p=" +
          std::to_string(p) + ", faults at 30% of the fault-free makespan, "
          "reps=" + std::to_string(reps) +
          (timed ? ", comm-timed engine" : ""));

  CsvWriter csv(std::cout,
                {"crashes", "volume_inflation", "makespan_inflation",
                 "requeued_tasks"});

  OuterStrategyOptions options;
  options.phase2_fraction = 0.012;

  for (const std::uint32_t crashes : {0u, 1u, 2u, 4u, 8u}) {
    RunningStats volume_infl, makespan_infl, requeued;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng speed_rng(derive_stream(rep_seed, "speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);

      auto run = [&](const std::vector<WorkerFault>& faults) {
        auto strategy = make_outer_strategy("DynamicOuter2Phases",
                                            OuterConfig{n}, p, rep_seed,
                                            options);
        if (timed) {
          TimedSimConfig config;
          config.seed = rep_seed;
          config.faults = faults;
          return simulate_timed(*strategy, platform, config);
        }
        SimConfig config;
        config.seed = rep_seed;
        config.faults = faults;
        return simulate(*strategy, platform, config);
      };

      const SimResult baseline = run({});
      // Crash the first `crashes` workers at 30% of the clean makespan.
      std::vector<WorkerFault> faults;
      for (std::uint32_t c = 0; c < crashes; ++c) {
        faults.push_back(WorkerFault{0.3 * baseline.makespan, c, 0.0});
      }
      const SimResult result = run(faults);

      volume_infl.push(static_cast<double>(result.total_blocks) /
                       static_cast<double>(baseline.total_blocks));
      makespan_infl.push(result.makespan / baseline.makespan);
      requeued.push(static_cast<double>(result.requeued_tasks));
    }
    csv.row(std::vector<double>{static_cast<double>(crashes),
                                volume_infl.mean(), makespan_infl.mean(),
                                requeued.mean()});
  }
  std::cout << "# crashes at 30% progress; inflation relative to the "
               "fault-free run with identical seeds\n";
  return 0;
}
