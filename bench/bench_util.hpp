// Shared plumbing for the figure-reproduction harnesses.
//
// Every binary prints (a) a provenance header describing the paper
// artifact it regenerates and the parameters used, and (b) the series
// as CSV rows, so output can be diffed run-to-run and plotted directly.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/figure.hpp"
#include "obs/export.hpp"
#include "obs/instrument.hpp"
#include "sim/trace_export.hpp"

namespace hetsched::bench {

inline void print_header(const std::string& figure, const std::string& what,
                         const std::string& params) {
  std::cout << "# " << figure << ": " << what << "\n";
  std::cout << "# " << params << "\n";
}

/// Provenance line for replication-engine timing. Benches whose data
/// stream must stay machine-parseable (JSON) pass std::cerr.
inline void print_perf(const std::string& what, const ExperimentResult& result,
                       std::ostream& out = std::cout) {
  out << "# perf: " << what << " wall_time_sec=" << result.wall_time_sec
      << " reps_per_sec=" << result.reps_per_sec
      << " rep_parallelism=" << result.rep_parallelism << "\n";
}

/// Narrow-checked CLI conversion: negative or >= 2^32 values must fail
/// loudly instead of wrapping into bogus p/n grids.
inline std::vector<std::uint32_t> to_u32(const std::vector<std::int64_t>& v) {
  std::vector<std::uint32_t> out;
  out.reserve(v.size());
  for (const auto x : v) {
    if (x < 0 ||
        x > static_cast<std::int64_t>(
                std::numeric_limits<std::uint32_t>::max())) {
      throw std::invalid_argument(
          "bench::to_u32: value out of uint32 range: " + std::to_string(x));
    }
    out.push_back(static_cast<std::uint32_t>(x));
  }
  return out;
}

/// The worker-count grid used by the paper's p-sweeps (Figures 1-10).
inline std::vector<std::int64_t> default_p_grid() {
  return {10, 20, 50, 100, 150, 200, 250, 300};
}

/// Shared observability flags for figure benches. When --trace-out=
/// and/or --metrics-out= is passed, runs one instrumented repetition
/// (repetition 0's seed, so it reproduces the figure's first draw) of
/// the named strategy and dumps a chrome://tracing / Perfetto file and
/// a JSON-lines metrics/time-series file. Optional knobs:
///   --traj-strategy=<name>   (default: the kernel's 2-phase strategy)
///   --traj-p=<workers>       (default 100)
///   --sample-interval=<dt>   (simulated time units; default auto)
/// Returns true when anything was written.
inline bool maybe_dump_trajectory(const CliArgs& args, Kernel kernel,
                                  std::uint32_t n, const Scenario& scenario,
                                  std::uint64_t seed) {
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  if (trace_out.empty() && metrics_out.empty()) return false;

  ExperimentConfig config;
  config.kernel = kernel;
  config.n = n;
  config.scenario = scenario;
  config.seed = seed;
  config.p = static_cast<std::uint32_t>(args.get_int("traj-p", 100));
  config.strategy = args.get("traj-strategy",
                             kernel == Kernel::kOuter ? "DynamicOuter2Phases"
                                                      : "DynamicMatrix2Phases");

  InstrumentOptions options;
  options.sample_interval = args.get_double("sample-interval", 0.0);
  InstrumentedRep rep;
  run_instrumented_rep(config, derive_stream(seed, "rep.0"), options, rep);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) throw std::runtime_error("cannot open " + trace_out);
    export_chrome_trace(out, rep.recording, Platform(rep.outcome.speeds),
                        &rep.sampler);
    std::cerr << "# trajectory: chrome trace -> " << trace_out
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) throw std::runtime_error("cannot open " + metrics_out);
    write_timeseries_jsonl(out, rep.sampler);
    write_metrics_json(out, rep.registry);
    out << '\n';
    std::cerr << "# trajectory: metrics JSONL -> " << metrics_out << "\n";
  }
  return true;
}

}  // namespace hetsched::bench
