// Shared plumbing for the figure-reproduction harnesses.
//
// Every binary prints (a) a provenance header describing the paper
// artifact it regenerates and the parameters used, and (b) the series
// as CSV rows, so output can be diffed run-to-run and plotted directly.
#pragma once

#include <cstdint>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/experiment.hpp"
#include "core/figure.hpp"

namespace hetsched::bench {

inline void print_header(const std::string& figure, const std::string& what,
                         const std::string& params) {
  std::cout << "# " << figure << ": " << what << "\n";
  std::cout << "# " << params << "\n";
}

/// Provenance line for replication-engine timing. Benches whose data
/// stream must stay machine-parseable (JSON) pass std::cerr.
inline void print_perf(const std::string& what, const ExperimentResult& result,
                       std::ostream& out = std::cout) {
  out << "# perf: " << what << " wall_time_sec=" << result.wall_time_sec
      << " reps_per_sec=" << result.reps_per_sec
      << " rep_parallelism=" << result.rep_parallelism << "\n";
}

/// Narrow-checked CLI conversion: negative or >= 2^32 values must fail
/// loudly instead of wrapping into bogus p/n grids.
inline std::vector<std::uint32_t> to_u32(const std::vector<std::int64_t>& v) {
  std::vector<std::uint32_t> out;
  out.reserve(v.size());
  for (const auto x : v) {
    if (x < 0 ||
        x > static_cast<std::int64_t>(
                std::numeric_limits<std::uint32_t>::max())) {
      throw std::invalid_argument(
          "bench::to_u32: value out of uint32 range: " + std::to_string(x));
    }
    out.push_back(static_cast<std::uint32_t>(x));
  }
  return out;
}

/// The worker-count grid used by the paper's p-sweeps (Figures 1-10).
inline std::vector<std::int64_t> default_p_grid() {
  return {10, 20, 50, 100, 150, 200, 250, 300};
}

}  // namespace hetsched::bench
