// Figure 9: all matrix-multiplication strategies plus the analysis
// curve, matrices of N/l = 40 blocks (64,000 tasks).
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 40));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", bench::default_p_grid()));

  bench::print_header("Figure 9",
                      "matrix multiplication, all strategies + analysis",
                      "n=" + std::to_string(n) + " blocks (" +
                          std::to_string(static_cast<std::uint64_t>(n) * n * n) +
                          " tasks), reps=" + std::to_string(reps));

  const auto points = sweep_worker_count(
      Kernel::kMatmul, n, ps, paper_default_scenario(),
      {"DynamicMatrix2Phases", "DynamicMatrix", "RandomMatrix", "SortedMatrix"},
      true, seed, reps);
  print_sweep_csv(points, "p", std::cout);
  bench::maybe_dump_trajectory(args, Kernel::kMatmul, n,
                               paper_default_scenario(), seed);
  return 0;
}
