// Ablation: hybrid CPU+GPU-class platforms. The paper motivates its
// dynamic schedulers with hybrid machines; this bench sweeps the
// accelerator fraction of a two-class platform (slow=40, fast=400 —
// a 10x speed gap) and checks that the strategy ranking and the
// analysis accuracy survive extreme two-class heterogeneity.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header(
      "Ablation (hybrid)", "two-class CPU/GPU platform, 10x speed gap",
      "outer product, n=" + std::to_string(n) + ", p=" + std::to_string(p) +
          ", speeds {40, 400}, reps=" + std::to_string(reps));

  const std::vector<std::string> strategies{
      "DynamicOuter2Phases", "DynamicOuter", "RandomOuter", "SortedOuter"};

  std::vector<SweepPoint> points;
  for (const double fast_fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    SweepPoint point;
    point.x = fast_fraction;
    const Scenario scenario{
        "hybrid", std::make_shared<TwoClassSpeeds>(40.0, 400.0, fast_fraction),
        PerturbationModel{}};
    bool analysis_done = false;
    for (const auto& name : strategies) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = name;
      config.n = n;
      config.p = p;
      config.scenario = scenario;
      config.seed = seed;
      config.reps = reps;
      const ExperimentResult result = run_experiment(config);
      point.normalized[name] = result.normalized;
      if (!analysis_done) {
        point.normalized["Analysis"] = result.analysis_ratio;
        analysis_done = true;
      }
    }
    points.push_back(std::move(point));
  }
  print_sweep_csv(points, "fast_fraction", std::cout);
  std::cout << "# ranking is stable across accelerator fractions; the "
               "speed-agnostic beta still tracks the analysis\n";
  return 0;
}
