// Microbenchmarks (google-benchmark) for the master-side data
// structures that dominate scheduler decision cost: the swap-remove
// task pool, the dynamic bitsets, and the engine's event loop.
#include <benchmark/benchmark.h>

#include "common/dynamic_bitset.hpp"
#include "common/rng.hpp"
#include "common/swap_remove_pool.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hetsched;

void BM_PoolPopRandom(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(1);
  SwapRemovePool pool(n);
  for (auto _ : state) {
    if (pool.empty()) {
      state.PauseTiming();
      pool = SwapRemovePool(n);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.pop_random(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolPopRandom)->Arg(10000)->Arg(1000000);

void BM_PoolRemoveById(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(2);
  SwapRemovePool pool(n);
  for (auto _ : state) {
    if (pool.empty()) {
      state.PauseTiming();
      pool = SwapRemovePool(n);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.remove(rng.next_below(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolRemoveById)->Arg(1000000);

void BM_BitsetSetTest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DynamicBitset bits(n);
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t pos = rng.next_below(n);
    benchmark::DoNotOptimize(bits.set_if_clear(pos));
    benchmark::DoNotOptimize(bits.test(pos));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsetSetTest)->Arg(1 << 20);

void BM_FullSimulationOuter(benchmark::State& state) {
  // End-to-end simulator throughput: one complete DynamicOuter2Phases
  // run, n x n tasks on 16 heterogeneous workers.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(4);
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 16, rng);
  OuterStrategyOptions options;
  options.phase2_fraction = 0.02;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    auto strategy = make_outer_strategy("DynamicOuter2Phases", OuterConfig{n},
                                        16, runs + 1, options);
    benchmark::DoNotOptimize(simulate(*strategy, platform));
    ++runs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs) * n * n);
  state.SetLabel("items = tasks simulated");
}
BENCHMARK(BM_FullSimulationOuter)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
