// Microbenchmarks (google-benchmark) for the master-side data
// structures that dominate scheduler decision cost: the swap-remove
// task pool, the dynamic bitsets, and the engine's event loop.
#include <benchmark/benchmark.h>

#include "common/dynamic_bitset.hpp"
#include "common/rng.hpp"
#include "common/swap_remove_pool.hpp"
#include "common/task_pool.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/strategy.hpp"

namespace {

using namespace hetsched;

void BM_PoolPopRandom(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(1);
  SwapRemovePool pool(n);
  for (auto _ : state) {
    if (pool.empty()) {
      state.PauseTiming();
      pool = SwapRemovePool(n);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.pop_random(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolPopRandom)->Arg(10000)->Arg(1000000);

void BM_PoolRemoveById(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(2);
  SwapRemovePool pool(n);
  for (auto _ : state) {
    if (pool.empty()) {
      state.PauseTiming();
      pool = SwapRemovePool(n);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.remove(rng.next_below(n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolRemoveById)->Arg(1000000);

void BM_PoolRemovePresentRun(benchmark::State& state) {
  // Word-level strided retirement — the primitive behind every
  // run-encoded grant: one call retires up to 64 tasks. Arg is the
  // stride (1 = the contiguous k-run orientation, 100 = the scattered
  // face/column orientation of the dual-mirror structure).
  const auto stride = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kIds = 1ull << 22;
  TaskPool pool(kIds, /*presence_view=*/true, /*lazy_dense=*/true);
  std::uint64_t first = 0;
  for (auto _ : state) {
    if (first + 64 * stride > kIds) {
      state.PauseTiming();
      pool = TaskPool(kIds, true, true);
      first = 0;
      state.ResumeTiming();
    }
    pool.remove_present_run(first, ~std::uint64_t{0}, stride);
    first += 64 * stride;
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel("items = tasks retired");
}
BENCHMARK(BM_PoolRemovePresentRun)->Arg(1)->Arg(100);

void BM_PoolRemovePerTask(benchmark::State& state) {
  // Per-task baseline for BM_PoolRemovePresentRun: the same 64-id
  // windows retired one remove() at a time (the pre-run protocol).
  const auto stride = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kIds = 1ull << 22;
  TaskPool pool(kIds, /*presence_view=*/true, /*lazy_dense=*/true);
  std::uint64_t first = 0;
  for (auto _ : state) {
    if (first + 64 * stride > kIds) {
      state.PauseTiming();
      pool = TaskPool(kIds, true, true);
      first = 0;
      state.ResumeTiming();
    }
    for (int b = 0; b < 64; ++b) pool.remove(first + b * stride);
    first += 64 * stride;
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel("items = tasks retired");
}
BENCHMARK(BM_PoolRemovePerTask)->Arg(1)->Arg(100);

void BM_AssignmentRunIteration(benchmark::State& state) {
  // Consumer-side cost of the run facade: expanding an Assignment of
  // 64 full TaskRuns (4096 tasks) through for_each_task.
  Assignment a;
  for (std::uint32_t r = 0; r < 64; ++r) {
    a.task_runs.push_back(
        TaskRun{static_cast<TaskId>(r) * 4096, ~std::uint64_t{0}, 40, 64});
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    a.for_each_task([&](TaskId id) { sum += id; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
  state.SetLabel("items = tasks visited");
}
BENCHMARK(BM_AssignmentRunIteration);

void BM_AssignmentScalarIteration(benchmark::State& state) {
  // Per-task baseline for BM_AssignmentRunIteration: the same 4096
  // task ids carried as scalars in Assignment::tasks.
  Assignment a;
  for (std::uint32_t r = 0; r < 64; ++r) {
    for (std::uint32_t b = 0; b < 64; ++b) {
      a.tasks.push_back(static_cast<TaskId>(r) * 4096 + b * 40);
    }
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    a.for_each_task([&](TaskId id) { sum += id; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
  state.SetLabel("items = tasks visited");
}
BENCHMARK(BM_AssignmentScalarIteration);

void BM_BitsetSetTest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  DynamicBitset bits(n);
  Rng rng(3);
  for (auto _ : state) {
    const std::size_t pos = rng.next_below(n);
    benchmark::DoNotOptimize(bits.set_if_clear(pos));
    benchmark::DoNotOptimize(bits.test(pos));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsetSetTest)->Arg(1 << 20);

void BM_FullSimulationOuter(benchmark::State& state) {
  // End-to-end simulator throughput: one complete DynamicOuter2Phases
  // run, n x n tasks on 16 heterogeneous workers.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(4);
  const Platform platform =
      make_platform(UniformIntervalSpeeds(10.0, 100.0), 16, rng);
  OuterStrategyOptions options;
  options.phase2_fraction = 0.02;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    auto strategy = make_outer_strategy("DynamicOuter2Phases", OuterConfig{n},
                                        16, runs + 1, options);
    benchmark::DoNotOptimize(simulate(*strategy, platform));
    ++runs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(runs) * n * n);
  state.SetLabel("items = tasks simulated");
}
BENCHMARK(BM_FullSimulationOuter)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
