// Extension: two-level rack scheduling. Compares a flat master over
// all workers against the hierarchical composition (static inter-rack
// split + per-rack dynamic scheduling), reporting where the traffic
// moves: the hierarchy pays intra-rack volume comparable to flat but
// needs only ~lower-bound inter-rack volume — the scarce resource on
// real clusters.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "hier/hierarchical.hpp"
#include "platform/lower_bound.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto workers_per_rack =
      static_cast<std::uint32_t>(args.get_int("workers-per-rack", 8));

  bench::print_header(
      "Extension (hierarchical)",
      "flat master vs static-inter-rack + dynamic-intra-rack",
      "n=" + std::to_string(n) + ", " + std::to_string(workers_per_rack) +
          " workers/rack, reps=" + std::to_string(reps));

  CsvWriter csv(std::cout,
                {"racks", "total_workers", "flat.normalized",
                 "hier.intra_normalized", "hier.inter_normalized",
                 "hier.rack_imbalance"});

  for (const std::uint32_t n_racks : {2u, 4u, 8u, 16u}) {
    RunningStats flat_norm, intra_norm, inter_norm, imbalance;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng rng(derive_stream(rep_seed, "speeds"));
      UniformIntervalSpeeds model(10.0, 100.0);
      std::vector<Platform> racks;
      std::vector<double> all_speeds;
      for (std::uint32_t q = 0; q < n_racks; ++q) {
        racks.push_back(make_platform(model, workers_per_rack, rng));
        for (const double s : racks.back().speeds()) all_speeds.push_back(s);
      }

      // Flat reference: one master over every worker.
      ExperimentConfig flat;
      flat.kernel = Kernel::kOuter;
      flat.strategy = "DynamicOuter2Phases";
      flat.n = n;
      flat.p = n_racks * workers_per_rack;
      flat.reps = 1;
      flat.seed = rep_seed;
      flat.scenario =
          Scenario{"fixed", std::make_shared<FixedListSpeeds>(all_speeds),
                   PerturbationModel{}};
      flat_norm.push(run_experiment(flat).normalized.mean);

      // Hierarchical run on the same workers.
      HierarchicalConfig config;
      config.n = n;
      config.seed = rep_seed;
      const HierarchicalResult hier = run_hierarchical_outer(racks, config);
      const Platform everyone(all_speeds);
      const double flat_lb =
          outer_lower_bound(n, everyone.relative_speeds());
      intra_norm.push(static_cast<double>(hier.intra_rack_blocks) / flat_lb);
      inter_norm.push(hier.inter_normalized(n));
      imbalance.push(hier.rack_imbalance());
    }
    csv.row(std::vector<double>{
        static_cast<double>(n_racks),
        static_cast<double>(n_racks * workers_per_rack), flat_norm.mean(),
        intra_norm.mean(), inter_norm.mean(), imbalance.mean()});
  }
  std::cout << "# flat.normalized and hier.intra_normalized share the flat "
               "lower bound; hier.inter_normalized uses the rack-level "
               "bound\n";
  return 0;
}
