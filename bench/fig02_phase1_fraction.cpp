// Figure 2: communication of DynamicOuter2Phases as a function of the
// percentage of tasks treated in phase 1, for one fixed speed draw with
// p = 20 workers and N/l = 100 blocks. Flat series for the other
// strategies are shown for reference.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header("Figure 2",
                      "DynamicOuter2Phases vs fraction of tasks in phase 1",
                      "n=" + std::to_string(n) + ", p=" + std::to_string(p) +
                          ", one fixed speed draw, reps=" +
                          std::to_string(reps));

  std::vector<double> fractions;
  for (double f = 0.0; f <= 0.90001; f += 0.1) fractions.push_back(f);
  for (const double f : {0.95, 0.97, 0.985, 0.995, 0.999}) {
    fractions.push_back(f);
  }

  const auto points = sweep_phase1_fraction(Kernel::kOuter, n, p, fractions,
                                            paper_default_scenario(), seed,
                                            reps);
  print_sweep_csv(points, "phase1_fraction", std::cout);
  bench::maybe_dump_trajectory(args, Kernel::kOuter, n,
                               paper_default_scenario(), seed);
  return 0;
}
