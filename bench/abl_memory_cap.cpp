// Ablation: finite worker memory. The paper's workers cache blocks
// forever; this bench sweeps a per-worker LRU cache capacity and
// measures the communication inflation from refetches — locating the
// memory footprint the paper's volumes implicitly assume (roughly the
// phase-1 working set, 2 x_k N blocks per worker).
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "outer/bounded_lru.hpp"
#include "platform/lower_bound.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header(
      "Ablation (memory)", "per-worker LRU cache capacity sweep",
      "BoundedLruOuter, n=" + std::to_string(n) + ", p=" + std::to_string(p) +
          ", capacity in blocks (2n = unbounded), reps=" +
          std::to_string(reps));

  CsvWriter csv(std::cout,
                {"capacity", "normalized.mean", "normalized.sd",
                 "refetch_share"});

  for (const std::uint32_t capacity :
       {4u, 8u, 16u, 32u, 64u, 128u, 2 * n}) {
    RunningStats normalized;
    double refetch_share = 0.0;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng speed_rng(derive_stream(rep_seed, "speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);
      BoundedLruOuterStrategy strategy(OuterConfig{n}, p, rep_seed, capacity);
      const SimResult result = simulate(strategy, platform);
      const double lb = outer_lower_bound(n, platform.relative_speeds());
      normalized.push(result.normalized_volume(lb));
      refetch_share += static_cast<double>(strategy.refetches()) /
                       static_cast<double>(result.total_blocks);
    }
    csv.row(std::vector<double>{static_cast<double>(capacity),
                                normalized.mean(), normalized.stddev(),
                                refetch_share / reps});
  }
  std::cout << "# capacity 2n never evicts; small caches pay refetches\n";
  return 0;
}
