// Ablation: self-tuning switch vs model-tuned switch. AdaptiveOuter
// decides the phase switch online from observed marginal efficiency —
// no beta, no ODE, no speeds, no problem size — and is compared against
// the analysis-tuned DynamicOuter2Phases, pure DynamicOuter and
// RandomOuter across worker counts.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "matmul/adaptive_matmul.hpp"
#include "outer/adaptive_outer.hpp"
#include "platform/lower_bound.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {10, 20, 50, 100, 200}));

  bench::print_header(
      "Ablation (adaptive)", "online efficiency-based switch vs model beta",
      "outer product, n=" + std::to_string(n) + ", threshold 1.5 "
          "tasks/step, reps=" + std::to_string(reps));

  CsvWriter csv(std::cout,
                {"p", "Adaptive.mean", "Adaptive.sd", "Tuned2Phases.mean",
                 "DynamicOuter.mean", "RandomOuter.mean",
                 "adaptive_vs_tuned_pct"});

  for (const std::uint32_t p : ps) {
    RunningStats adaptive;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng rng(derive_stream(rep_seed, "experiment.speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, rng);
      AdaptiveOuterStrategy strategy(OuterConfig{n}, p, rep_seed);
      const SimResult result = simulate(strategy, platform);
      adaptive.push(result.normalized_volume(
          outer_lower_bound(n, platform.relative_speeds())));
    }

    auto reference = [&](const std::string& name) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = name;
      config.n = n;
      config.p = p;
      config.reps = reps;
      config.seed = seed;
      return run_experiment(config).normalized.mean;
    };
    const double tuned = reference("DynamicOuter2Phases");
    csv.row(std::vector<double>{
        static_cast<double>(p), adaptive.mean(), adaptive.stddev(), tuned,
        reference("DynamicOuter"), reference("RandomOuter"),
        100.0 * (adaptive.mean() / tuned - 1.0)});
  }
  std::cout << "# adaptive needs no beta / model / speeds / problem size\n";

  // Matmul counterpart (blocks-per-task threshold 2.5), n = 40.
  const auto n_mm = static_cast<std::uint32_t>(args.get_int("n-mm", 40));
  std::cout << "\n# matmul: AdaptiveMatmul vs tuned DynamicMatrix2Phases, n="
            << n_mm << "\n";
  CsvWriter mm_csv(std::cout, {"p", "Adaptive.mean", "Tuned2Phases.mean",
                               "adaptive_vs_tuned_pct"});
  for (const std::uint32_t p : {20u, 50u, 100u}) {
    RunningStats adaptive;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng rng(derive_stream(rep_seed, "experiment.speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, rng);
      AdaptiveMatmulStrategy strategy(MatmulConfig{n_mm}, p, rep_seed);
      const SimResult result = simulate(strategy, platform);
      adaptive.push(result.normalized_volume(
          matmul_lower_bound(n_mm, platform.relative_speeds())));
    }
    ExperimentConfig tuned;
    tuned.kernel = Kernel::kMatmul;
    tuned.strategy = "DynamicMatrix2Phases";
    tuned.n = n_mm;
    tuned.p = p;
    tuned.reps = reps;
    tuned.seed = seed;
    const double tuned_mean = run_experiment(tuned).normalized.mean;
    mm_csv.row(std::vector<double>{static_cast<double>(p), adaptive.mean(),
                                   tuned_mean,
                                   100.0 * (adaptive.mean() / tuned_mean - 1.0)});
  }
  return 0;
}
