// Extension: decentralized work stealing vs the paper's master-based
// strategies on the outer product. Work stealing starts from a
// speed-agnostic band partition (good locality, like SortedOuter per
// band) and re-balances by stealing — this bench shows where it lands
// between the data-oblivious and data-aware schedulers, and how many
// steals the heterogeneity induces.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {10, 20, 50, 100, 200}));

  bench::print_header(
      "Extension (work stealing)",
      "band-partition + steal-half vs master-based dynamic strategies",
      "outer product, n=" + std::to_string(n) + ", speeds U[10,100], reps=" +
          std::to_string(reps));

  const std::vector<std::string> strategies{
      "WorkStealingOuter", "DynamicOuter2Phases", "DynamicOuter",
      "SortedOuter", "RandomOuter"};
  const auto points = sweep_worker_count(Kernel::kOuter, n, ps,
                                         paper_default_scenario(), strategies,
                                         false, seed, reps);
  print_sweep_csv(points, "p", std::cout);
  std::cout << "# band partition gives work stealing SortedOuter-like "
               "locality until steals replicate inputs\n";
  return 0;
}
