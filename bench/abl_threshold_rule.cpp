// Ablation: how sensitive is DynamicOuter2Phases to the placement of
// the phase switch? Compares the analysis-chosen threshold against the
// empirical best found by sweeping, across several platform sizes —
// quantifying the cost of trusting the ODE model instead of tuning.
#include <cmath>
#include <iostream>

#include "analysis/homogeneous.hpp"
#include "bench/bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {10, 20, 50, 100}));

  bench::print_header(
      "Ablation", "threshold placement sensitivity for DynamicOuter2Phases",
      "n=" + std::to_string(n) + ", model beta vs swept argmin, reps=" +
          std::to_string(reps));

  CsvWriter csv(std::cout,
                {"p", "beta_model", "ratio_at_model", "beta_best_swept",
                 "ratio_at_best", "regret_pct"});

  for (const std::uint32_t p : ps) {
    const double beta_model = beta_homogeneous_outer(p, n);

    auto measure = [&](double beta) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = "DynamicOuter2Phases";
      config.n = n;
      config.p = p;
      config.seed = seed;
      config.reps = reps;
      config.phase2_fraction = std::exp(-beta);
      return run_experiment(config).normalized.mean;
    };

    const double at_model = measure(beta_model);
    double best_beta = beta_model;
    double best_value = at_model;
    for (double b = 1.0; b <= 8.0001; b += 0.5) {
      const double v = measure(b);
      if (v < best_value) {
        best_value = v;
        best_beta = b;
      }
    }
    const double regret = 100.0 * (at_model / best_value - 1.0);
    csv.row(std::vector<double>{static_cast<double>(p), beta_model, at_model,
                                best_beta, best_value, regret});
  }
  std::cout << "# regret = extra communication from using the model's beta "
               "instead of the swept optimum\n";
  return 0;
}
