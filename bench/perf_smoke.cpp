// Machine-readable performance smoke: one JSON (BENCH_PERF.json) with
// the numbers future PRs regress against.
//
// Sections:
//   heap        - raw binary-heap push/pop ns/op (host-speed calibration,
//                 the same unit bench/micro_scheduler_overhead uses)
//   engine      - flat-engine ns/event on a DynamicOuter run
//   request_ns  - master-side ns/request for the paper's eight strategies
//   reps_per_sec- single-thread replication throughput on fig05-sized
//                 (outer N/l = 1000) and fig10-sized (matmul N/l = 100)
//                 workloads
//   large_pool  - peak RSS with a 10^9-id task pool resident
//
// Every ns metric is also reported as a ratio over the heap baseline so
// CI can compare against bench/baselines/perf_smoke.json without being
// fooled by runner speed. --large additionally runs the full
// N/l = 1000 matrix-multiplication instances (minutes, not for CI).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <queue>
#include <sstream>
#include <string>
#include <sys/resource.h>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/json.hpp"
#include "common/task_pool.hpp"
#include "matmul/matmul_factory.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/engine.hpp"

namespace {

using namespace hetsched;

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

/// Raw binary-heap churn, the host-speed unit: ns per push+pop at a
/// fixed depth (mirrors BM_HeapBaseline in micro_scheduler_overhead).
double heap_ns_per_op() {
  using Entry = std::pair<double, std::uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  constexpr int kDepth = 64;
  std::uint64_t seq = 0;
  double t = 0.0;
  for (int i = 0; i < kDepth; ++i) heap.push({t += 0.7, seq++});
  constexpr std::uint64_t kOps = 10'000'000;
  volatile std::uint64_t sink = 0;
  const double start = now_sec();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const Entry top = heap.top();
    heap.pop();
    heap.push({top.first + 1.3, seq++});
    sink = heap.size();
  }
  (void)sink;
  return (now_sec() - start) * 1e9 / static_cast<double>(kOps);
}

/// Flat-engine ns/event (one TaskDone event per task).
double flat_engine_ns_per_event() {
  Platform platform({10, 15, 20, 25, 30, 40, 50, 80});
  std::uint64_t events = 0;
  double elapsed = 0.0;
  std::uint64_t seed = 0;
  while (elapsed < 0.5) {
    auto strategy =
        make_outer_strategy("DynamicOuter", OuterConfig{60}, 8, ++seed);
    const double start = now_sec();
    const SimResult result = simulate(*strategy, platform);
    elapsed += now_sec() - start;
    events += result.total_tasks_done;
  }
  return elapsed * 1e9 / static_cast<double>(events);
}

/// Master-side ns/request: drain a fresh instance to exhaustion through
/// the request path, timing only the drain.
double request_ns(bool outer, const std::string& name) {
  const std::uint32_t workers = 16;
  std::uint64_t requests = 0;
  double elapsed = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t sink = 0;
  while (elapsed < 0.3) {
    std::unique_ptr<Strategy> strategy;
    if (outer) {
      OuterStrategyOptions options;
      options.phase2_fraction = 0.02;
      strategy =
          make_outer_strategy(name, OuterConfig{100}, workers, ++seed, options);
    } else {
      MatmulStrategyOptions options;
      options.phase2_fraction = 0.05;
      strategy =
          make_matmul_strategy(name, MatmulConfig{40}, workers, ++seed, options);
    }
    std::uint32_t next_worker = 0;
    Assignment scratch;  // the engines' steady-state path: one reused buffer
    const double start = now_sec();
    while (strategy->on_request(next_worker, scratch)) {
      // task_count() sums scalars AND run-encoded grants, so the sink
      // observes the full assignment on the run-emitting strategies.
      sink += scratch.task_count();
      ++requests;
      next_worker = (next_worker + 1) % workers;
    }
    elapsed += now_sec() - start;
  }
  if (sink == 0) std::cerr << "";  // keep the accumulator observable
  return elapsed * 1e9 / static_cast<double>(requests);
}

/// Master-side ns/request for the pure data-aware strategies with an
/// intra-rep lane team. Measured under a forced 16-slot parallelism
/// budget so the requested lanes are actually granted on any runner;
/// lanes=1 is the zero-cost control the CI gate compares against the
/// plain request_ns numbers.
double lane_request_ns(bool outer, const std::string& name,
                       std::uint32_t lanes) {
  const std::uint32_t workers = 16;
  std::uint64_t requests = 0;
  double elapsed = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t sink = 0;
  while (elapsed < 0.3) {
    std::unique_ptr<Strategy> strategy;
    if (outer) {
      OuterStrategyOptions options;
      options.lanes = lanes;
      strategy =
          make_outer_strategy(name, OuterConfig{100}, workers, ++seed, options);
    } else {
      MatmulStrategyOptions options;
      options.lanes = lanes;
      strategy =
          make_matmul_strategy(name, MatmulConfig{40}, workers, ++seed, options);
    }
    strategy->prepare_lanes();
    std::uint32_t next_worker = 0;
    Assignment scratch;
    const double start = now_sec();
    while (strategy->on_request(next_worker, scratch)) {
      sink += scratch.task_count();  // scalars + run-encoded grants
      ++requests;
      next_worker = (next_worker + 1) % workers;
    }
    elapsed += now_sec() - start;
  }
  if (sink == 0) std::cerr << "";
  return elapsed * 1e9 / static_cast<double>(requests);
}

/// Resident cost of a 10^9-id task pool (matmul at N/l = 1000): RSS
/// delta after construction plus a short op mix to touch the layout.
double large_pool_rss_delta_mb() {
  const double before = peak_rss_mb();
  TaskPool pool(1'000'000'000ull);
  Rng rng(1);
  for (int i = 0; i < 1'000'000; ++i) pool.pop_random(rng);
  for (int i = 0; i < 1'000'000; ++i) pool.pop_first();
  volatile std::uint64_t sink = pool.size();
  (void)sink;
  return peak_rss_mb() - before;
}

/// Single-thread replication throughput for one figure-sized workload.
double workload_reps_per_sec(Kernel kernel, const std::string& strategy,
                             std::uint32_t n, std::uint32_t p,
                             std::uint32_t reps) {
  ExperimentConfig config;
  config.kernel = kernel;
  config.strategy = strategy;
  config.n = n;
  config.p = p;
  config.reps = reps;
  config.parallelism = 1;
  config.seed = 42;
  const ExperimentResult result = run_experiment(config);
  return result.reps_per_sec;
}

/// Same fig10-sized workload with the flight recorder attached
/// (wall-clock profiler + progress heartbeats into a sink). The
/// resulting rep-cost ratio is a required key in the CI perf gate, so
/// telemetry cost regressions fail the build like any other slowdown.
struct ProfiledWorkload {
  double reps_per_sec = 0.0;
  ProfileTotals profile;
};

ProfiledWorkload profiled_fig10_workload(std::uint32_t reps) {
  ExperimentConfig config;
  config.kernel = Kernel::kMatmul;
  config.strategy = "DynamicMatrix2Phases";
  config.n = 100;
  config.p = 100;
  config.reps = reps;
  config.parallelism = 1;
  config.seed = 42;
  config.profile = true;
  std::ostringstream sink;
  ProgressReporter reporter(sink, {});
  reporter.expect_reps(config.reps);
  config.progress = &reporter;
  const ExperimentResult result = run_experiment(config);
  return {result.reps_per_sec, result.profile};
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_path = args.get("out", "BENCH_PERF.json");

  const double heap = heap_ns_per_op();
  std::cerr << "# heap baseline: " << heap << " ns/op\n";
  const double engine = flat_engine_ns_per_event();
  std::cerr << "# flat engine: " << engine << " ns/event\n";

  const std::vector<std::string> outer_names = {
      "RandomOuter", "SortedOuter", "DynamicOuter", "DynamicOuter2Phases"};
  const std::vector<std::string> matmul_names = {
      "RandomMatrix", "SortedMatrix", "DynamicMatrix", "DynamicMatrix2Phases"};
  std::vector<std::pair<std::string, double>> request;
  for (const auto& name : outer_names) {
    request.emplace_back(name, request_ns(true, name));
    std::cerr << "# request " << name << ": " << request.back().second
              << " ns\n";
  }
  for (const auto& name : matmul_names) {
    request.emplace_back(name, request_ns(false, name));
    std::cerr << "# request " << name << ": " << request.back().second
              << " ns\n";
  }

  // fig05-sized (outer N/l = 1000) and fig10-sized (matmul N/l = 100)
  // single-thread replication throughput.
  std::vector<std::pair<std::string, double>> reps;
  const auto reps_of = [&](const char* label, Kernel kernel,
                           const std::string& strategy, std::uint32_t n) {
    const double r = workload_reps_per_sec(kernel, strategy, n, 100, 2);
    reps.emplace_back(std::string(label) + "." + strategy, r);
    std::cerr << "# reps/sec " << reps.back().first << ": " << r << "\n";
  };
  reps_of("fig05_outer_n1000", Kernel::kOuter, "RandomOuter", 1000);
  reps_of("fig05_outer_n1000", Kernel::kOuter, "DynamicOuter2Phases", 1000);
  reps_of("fig10_mm_n100", Kernel::kMatmul, "RandomMatrix", 100);
  reps_of("fig10_mm_n100", Kernel::kMatmul, "DynamicMatrix2Phases", 100);

  // Lane-team scaling on the request drain (forced budget so lanes
  // grant everywhere; restored right after). lanes=1 doubles as the
  // zero-cost control: CI pins it against the plain request numbers.
  // On a 1-hardware-thread host the lanes>1 rows would only measure
  // contention that no real deployment pays, so they are emitted as
  // explicit "skipped" markers instead of misleading numbers; the CI
  // gate compares only keys present in both baseline and run.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::vector<std::pair<std::string, double>> lane_request;
  std::vector<std::string> lane_skipped;
  set_parallel_budget_capacity(16);
  for (const bool outer : {true, false}) {
    const std::string name = outer ? "DynamicOuter" : "DynamicMatrix";
    for (const std::uint32_t lanes : {1u, 2u, 4u}) {
      const std::string row = name + ".lanes" + std::to_string(lanes);
      if (lanes > 1 && hw_threads <= 1) {
        lane_skipped.push_back(row);
        std::cerr << "# lane request " << row
                  << ": skipped (1 hardware thread)\n";
        continue;
      }
      lane_request.emplace_back(row, lane_request_ns(outer, name, lanes));
      std::cerr << "# lane request " << lane_request.back().first << ": "
                << lane_request.back().second << " ns\n";
    }
  }
  set_parallel_budget_capacity(0);

  const ProfiledWorkload profiled = profiled_fig10_workload(2);
  std::cerr << "# reps/sec fig10_mm_n100.DynamicMatrix2Phases (profiled): "
            << profiled.reps_per_sec << "\n";

  const double pool_rss = large_pool_rss_delta_mb();
  std::cerr << "# large pool (10^9 ids) rss delta: " << pool_rss << " MB\n";

  // --large: the full N/l = 1000 matrix-multiplication instances (10^9
  // tasks each) — the run the compact pool exists for. Minutes of wall
  // time; excluded from CI, results land in EXPERIMENTS.md.
  std::vector<std::pair<std::string, double>> large_norm;
  std::vector<std::pair<std::string, double>> large_wall;
  if (args.get_bool("large", false)) {
    const auto run_large = [&](const char* name, std::uint32_t lanes) {
      ExperimentConfig config;
      config.kernel = Kernel::kMatmul;
      config.strategy = name;
      config.n = 1000;
      config.p = 100;
      config.reps = 1;
      config.parallelism = 1;
      config.lanes = lanes;
      config.seed = 42;
      if (lanes > 1) set_parallel_budget_capacity(16);
      const double start = now_sec();
      const ExperimentResult result = run_experiment(config);
      const double wall = now_sec() - start;
      if (lanes > 1) set_parallel_budget_capacity(0);
      const std::string label =
          lanes > 1 ? std::string(name) + ".lanes" + std::to_string(lanes)
                    : std::string(name);
      large_norm.emplace_back(label, result.normalized.mean);
      large_wall.emplace_back(label, wall);
      std::cerr << "# large mm_n1000 " << label
                << ": normalized=" << result.normalized.mean
                << " wall=" << wall << " s, peak rss " << peak_rss_mb()
                << " MB\n";
    };
    // --large-random=0 skips the slowest row (~11 min; its code path
    // has no lane dependence) when only the laned rows are needed.
    if (args.get_bool("large-random", true)) run_large("RandomMatrix", 1);
    run_large("DynamicMatrix2Phases", 1);
    // The lanes=4 rerun must report the identical normalized volume —
    // the whole point of the deterministic lane team — with lower wall
    // time wherever the host actually has the cores.
    run_large("DynamicMatrix2Phases", 4);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", "hetsched-perf-smoke/1");
  json.field("hardware_concurrency", static_cast<std::uint64_t>(hw_threads));
  json.field("heap_ns_per_op", heap);
  json.field("flat_engine_ns_per_event", engine);
  json.key("request_ns");
  json.begin_object();
  for (const auto& [name, ns] : request) json.field(name, ns);
  json.end_object();
  json.key("reps_per_sec");
  json.begin_object();
  for (const auto& [name, r] : reps) json.field(name, r);
  json.end_object();
  json.key("lane_request_ns");
  json.begin_object();
  for (const auto& [name, ns] : lane_request) json.field(name, ns);
  for (const auto& name : lane_skipped) json.field(name, "skipped");
  json.end_object();
  // Host-independent ratios for the CI gate: ns metrics over the heap
  // baseline; throughput as heap-ops-per-rep (lower = faster).
  json.key("ratios_vs_heap");
  json.begin_object();
  json.field("flat_engine_ns_per_event", engine / heap);
  for (const auto& [name, ns] : request) json.field("request." + name, ns / heap);
  for (const auto& [name, r] : reps) {
    json.field("rep_cost." + name, 1e9 / (r * heap));
  }
  for (const auto& [name, ns] : lane_request) {
    json.field("lane.request_ns." + name, ns / heap);
  }
  // Telemetry-on rep cost: gated against the plain fig10 number above,
  // so profiler + progress can never silently grow past the noise
  // floor (the structural < 1% gate lives in tests/obs/profiler_test).
  json.field("profile.rep_cost.fig10_mm_n100.DynamicMatrix2Phases",
             1e9 / (profiled.reps_per_sec * heap));
  json.end_object();
  // Per-site wall totals of the profiled run, for eyeballing where a
  // telemetry regression landed (same site taxonomy as the CLI).
  json.key("profile");
  write_profile_json(json, profiled.profile);
  json.key("large_pool");
  json.begin_object();
  json.field("capacity_ids", static_cast<std::uint64_t>(1'000'000'000ull));
  json.field("rss_delta_mb", pool_rss);
  json.end_object();
  if (!large_norm.empty()) {
    json.key("large_mm_n1000");
    json.begin_object();
    for (std::size_t i = 0; i < large_norm.size(); ++i) {
      json.key(large_norm[i].first);
      json.begin_object();
      json.field("normalized_volume", large_norm[i].second);
      json.field("wall_sec", large_wall[i].second);
      json.end_object();
    }
    json.end_object();
  }
  json.field("peak_rss_mb", peak_rss_mb());
  json.end_object();
  out << "\n";
  std::cerr << "# wrote " << out_path << "\n";
  return 0;
}
