// Ablation: the best known *static* allocation (column-based rectangle
// partition, a 7/4-approximation requiring full knowledge of the
// speeds, Section 3.2) versus the paper's speed-agnostic dynamic
// strategies. Shows what the dynamic schedulers give up — and that the
// two-phase scheduler closes most of the gap without knowing speeds.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "platform/platform.hpp"
#include "static_part/column_partition.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {10, 20, 50, 100, 200}));

  bench::print_header(
      "Ablation", "static 7/4-approximation vs dynamic strategies",
      "outer product, n=" + std::to_string(n) + ", speeds U[10,100], reps=" +
          std::to_string(reps));

  CsvWriter csv(std::cout, {"p", "Static74.mean", "DynamicOuter2Phases.mean",
                            "DynamicOuter.mean", "RandomOuter.mean"});

  for (const std::uint32_t p : ps) {
    // Static ratio averaged over the same speed draws the experiments
    // use (it is deterministic given the draw).
    RunningStats static_ratio;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng speed_rng(derive_stream(rep_seed, "experiment.speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);
      static_ratio.push(static_outer_ratio(platform.relative_speeds()));
    }

    auto dynamic_mean = [&](const std::string& name) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = name;
      config.n = n;
      config.p = p;
      config.seed = seed;
      config.reps = reps;
      return run_experiment(config).normalized.mean;
    };

    csv.row(std::vector<double>{
        static_cast<double>(p), static_ratio.mean(),
        dynamic_mean("DynamicOuter2Phases"), dynamic_mean("DynamicOuter"),
        dynamic_mean("RandomOuter")});
  }
  std::cout << "# static needs exact speeds; dynamic strategies are "
               "speed-agnostic\n";
  return 0;
}
