// Replication-engine scaling: times run_experiment with a serial rep
// loop against the parallel engine at increasing thread counts and
// checks the summaries stay bit-identical. On a multi-core host the
// parallel engine should approach linear speedup (the acceptance bar
// for the engine is >= 3x at reps=32 on >= 4 cores).
#include <chrono>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "runtime/thread_pool.hpp"

namespace {

double time_once(hetsched::ExperimentConfig config, std::uint32_t parallelism,
                 hetsched::ExperimentResult& result) {
  config.parallelism = parallelism;
  const auto start = std::chrono::steady_clock::now();
  result = hetsched::run_experiment(config);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);

  ExperimentConfig config;
  config.kernel = Kernel::kOuter;
  config.strategy = args.get("strategy", "DynamicOuter2Phases");
  config.n = static_cast<std::uint32_t>(args.get_int("n", 100));
  config.p = static_cast<std::uint32_t>(args.get_int("p", 100));
  config.reps = static_cast<std::uint32_t>(args.get_int("reps", 32));
  config.seed = args.get_int("seed", 42);

  const std::uint32_t hw = parallel_budget_capacity();
  const auto max_threads = static_cast<std::uint32_t>(
      args.get_int("maxthreads", hw));  // force a sweep past detected cores
  bench::print_header(
      "micro_rep_parallel", "replication-engine scaling",
      "strategy=" + config.strategy + " n=" + std::to_string(config.n) +
          " p=" + std::to_string(config.p) +
          " reps=" + std::to_string(config.reps) +
          " hardware_threads=" + std::to_string(hw) +
          " maxthreads=" + std::to_string(max_threads));
  std::cout << "threads,wall_time_sec,reps_per_sec,speedup,bit_identical\n";

  ExperimentResult serial;
  const double serial_time = time_once(config, 1, serial);
  std::cout << "1," << serial_time << "," << config.reps / serial_time
            << ",1,1\n";

  auto run_at = [&](std::uint32_t threads) {
    ExperimentResult parallel;
    const double t = time_once(config, threads, parallel);
    const bool identical =
        parallel.normalized.mean == serial.normalized.mean &&
        parallel.normalized.stddev == serial.normalized.stddev &&
        parallel.makespan.mean == serial.makespan.mean &&
        parallel.makespan.stddev == serial.makespan.stddev;
    std::cout << threads << "," << t << "," << config.reps / t << ","
              << serial_time / t << "," << (identical ? 1 : 0) << "\n";
  };
  for (std::uint32_t threads = 2; threads < max_threads; threads *= 2) {
    run_at(threads);
  }
  if (max_threads >= 2) run_at(max_threads);
  return 0;
}
