// Figure 7: behaviour of the outer-product heuristics for different
// degrees of heterogeneity h — speeds uniform in [100-h, 100+h] — with
// p = 20 workers and N/l = 100 blocks.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header("Figure 7",
                      "outer product vs heterogeneity degree",
                      "speeds U[100-h,100+h], p=" + std::to_string(p) + ", n=" +
                          std::to_string(n) + ", reps=" + std::to_string(reps));

  const std::vector<double> hs{0.0, 20.0, 40.0, 60.0, 80.0, 95.0};
  const std::vector<std::string> strategies{
      "DynamicOuter2Phases", "DynamicOuter", "RandomOuter", "SortedOuter"};

  std::vector<SweepPoint> points;
  for (const double h : hs) {
    SweepPoint point;
    point.x = h;
    const Scenario scenario = heterogeneity_scenario(h);
    bool analysis_done = false;
    for (const auto& name : strategies) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = name;
      config.n = n;
      config.p = p;
      config.scenario = scenario;
      config.seed = seed;
      config.reps = reps;
      const ExperimentResult result = run_experiment(config);
      point.normalized[name] = result.normalized;
      if (!analysis_done) {
        point.normalized["Analysis"] = result.analysis_ratio;
        analysis_done = true;
      }
    }
    points.push_back(std::move(point));
  }
  print_sweep_csv(points, "heterogeneity", std::cout);
  return 0;
}
