// Figure 11: communication of DynamicMatrix2Phases and its analysis for
// varying beta, one fixed speed draw, p = 100 workers, N/l = 40 blocks.
// Paper: analysis optimum beta = 2.95 (2.92 when speed-agnostic),
// i.e. 94.7% of tasks in phase 1.
#include <cmath>

#include "analysis/matmul_analysis.hpp"
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 40));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header("Figure 11",
                      "DynamicMatrix2Phases and analysis vs beta",
                      "n=" + std::to_string(n) + ", p=" + std::to_string(p) +
                          ", one fixed speed draw, reps=" +
                          std::to_string(reps));

  std::vector<double> betas;
  for (double b = 1.0; b <= 6.0001; b += 0.25) betas.push_back(b);

  const auto points = sweep_beta(Kernel::kMatmul, n, p, betas,
                                 paper_default_scenario(), seed, reps);
  print_sweep_csv(points, "beta", std::cout);

  const std::vector<double> rs(p, 1.0 / p);
  const auto opt = MatmulAnalysis(rs, n).optimal_beta();
  double best_beta = betas.front();
  double best_value = 1e300;
  for (const auto& point : points) {
    const double v = point.normalized.at("DynamicMatrix2Phases").mean;
    if (v < best_value) {
      best_value = v;
      best_beta = point.x;
    }
  }
  std::cout << "# analysis-optimal beta (homogeneous): " << opt.x
            << " (predicted ratio " << opt.f << ", phase-1 share "
            << 100.0 * (1.0 - std::exp(-opt.x)) << "%)\n";
  std::cout << "# simulated argmin beta: " << best_beta << " (measured ratio "
            << best_value << ")\n";
  return 0;
}
