// One-command reproduction: runs the key data point of every paper
// figure as a single parallel campaign and emits one JSON document —
// the machine-readable companion to the per-figure CSV benches.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/campaign.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto parallelism = static_cast<unsigned>(args.get_int("jobs", 0));

  Campaign campaign("hpdc14-key-points");
  auto entry = [&](const std::string& label, Kernel kernel,
                   const std::string& strategy, std::uint32_t n,
                   std::uint32_t p, const std::string& scenario = "default") {
    ExperimentConfig config;
    config.kernel = kernel;
    config.strategy = strategy;
    config.n = n;
    config.p = p;
    config.reps = reps;
    config.seed = seed;
    config.scenario = named_scenario(scenario);
    campaign.add(label, config);
  };

  // Figure 1 / 4 at the Random peak.
  entry("fig1.random.p100", Kernel::kOuter, "RandomOuter", 100, 100);
  entry("fig1.sorted.p100", Kernel::kOuter, "SortedOuter", 100, 100);
  entry("fig1.dynamic.p100", Kernel::kOuter, "DynamicOuter", 100, 100);
  entry("fig4.twophase.p100", Kernel::kOuter, "DynamicOuter2Phases", 100, 100);
  // Figure 5 (large vectors) at p = 100.
  entry("fig5.random.p100", Kernel::kOuter, "RandomOuter", 1000, 100);
  entry("fig5.twophase.p100", Kernel::kOuter, "DynamicOuter2Phases", 1000,
        100);
  // Figure 8 scenarios at the paper's p = 20.
  entry("fig8.dyn20.twophase", Kernel::kOuter, "DynamicOuter2Phases", 100, 20,
        "dyn.20");
  entry("fig8.set5.twophase", Kernel::kOuter, "DynamicOuter2Phases", 100, 20,
        "set.5");
  // Figures 9-10 at p = 100.
  entry("fig9.random.p100", Kernel::kMatmul, "RandomMatrix", 40, 100);
  entry("fig9.dynamic.p100", Kernel::kMatmul, "DynamicMatrix", 40, 100);
  entry("fig9.twophase.p100", Kernel::kMatmul, "DynamicMatrix2Phases", 40,
        100);
  entry("fig10.twophase.p100", Kernel::kMatmul, "DynamicMatrix2Phases", 100,
        100);

  const auto outcomes = campaign.run(parallelism);
  // Provenance on stderr so the JSON document on stdout stays parseable.
  for (const auto& outcome : outcomes) {
    bench::print_perf(outcome.label, outcome.result, std::cerr);
  }
  write_campaign_json(std::cout, campaign.name(), outcomes);
  return 0;
}
