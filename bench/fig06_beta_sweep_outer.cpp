// Figure 6: communication of DynamicOuter2Phases and its analysis for
// varying beta (the switch threshold), one fixed speed draw, p = 20,
// N/l = 100. Also reports the analysis-optimal beta (paper: 4.17, with
// the simulation optimal anywhere in [3, 6]).
#include "analysis/outer_analysis.hpp"
#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "platform/platform.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header("Figure 6",
                      "DynamicOuter2Phases and analysis vs beta",
                      "n=" + std::to_string(n) + ", p=" + std::to_string(p) +
                          ", one fixed speed draw, reps=" +
                          std::to_string(reps));

  std::vector<double> betas;
  for (double b = 1.0; b <= 8.0001; b += 0.25) betas.push_back(b);

  const auto points =
      sweep_beta(Kernel::kOuter, n, p, betas, paper_default_scenario(), seed,
                 reps);
  print_sweep_csv(points, "beta", std::cout);

  // The analysis-chosen beta (homogeneous, speed-agnostic) and the
  // empirical argmin of the simulated series.
  const std::vector<double> rs(p, 1.0 / p);
  const auto opt = OuterAnalysis(rs, n).optimal_beta();
  double best_beta = betas.front();
  double best_value = 1e300;
  for (const auto& point : points) {
    const double v = point.normalized.at("DynamicOuter2Phases").mean;
    if (v < best_value) {
      best_value = v;
      best_beta = point.x;
    }
  }
  std::cout << "# analysis-optimal beta (homogeneous): " << opt.x
            << " (predicted ratio " << opt.f << ")\n";
  std::cout << "# simulated argmin beta: " << best_beta << " (measured ratio "
            << best_value << ")\n";
  return 0;
}
