// Observability anchor: overlays a sampled run of the data-aware
// strategies against the ODE trajectory of the analysis.
//
// Emits one CSV row per sampling instant with the simulated
// unmarked-task fraction next to the Lemma 1/2 (outer) or Lemma 7/8
// (matmul) prediction, then summary lines: the maximum absolute
// deviation over the comparable region, the observed phase-switch
// point vs e^{-beta} for the 2-phase strategies, and the wall-time
// overhead of the metrics stack versus an un-instrumented run (the
// acceptance gate: < 5%).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "obs/overlay.hpp"
#include "obs/progress.hpp"

namespace {

using namespace hetsched;

// Times a batch of reps with the first `instrumented_reps` of them
// running under the metrics stack (fig01 with --trace-out instruments
// exactly one rep; `instrumented_reps == reps` gives the worst-case
// per-rep cost).
double time_reps(const ExperimentConfig& config, std::uint32_t reps,
                 std::uint32_t instrumented_reps) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t r = 0; r < reps; ++r) {
    const std::uint64_t rep_seed =
        derive_stream(config.seed, "overhead." + std::to_string(r));
    if (r < instrumented_reps) {
      InstrumentOptions options;
      options.record_events = false;  // measure the metrics+sampler cost
      InstrumentedRep rep;
      run_instrumented_rep(config, rep_seed, options, rep);
    } else {
      run_single(config, rep_seed);
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// Min over interleaved rounds: discards scheduler and frequency noise,
// which at sub-millisecond rep times dwarfs the effect being measured.
std::pair<double, double> min_over_rounds(const ExperimentConfig& config,
                                          std::uint32_t reps,
                                          std::uint32_t instrumented_reps,
                                          int rounds) {
  double base = std::numeric_limits<double>::infinity();
  double instr = std::numeric_limits<double>::infinity();
  for (int round = 0; round < rounds; ++round) {
    base = std::min(base, time_reps(config, reps, 0));
    instr = std::min(instr, time_reps(config, reps, instrumented_reps));
  }
  return {base, instr};
}

double pct(double base, double instr) {
  return base > 0.0 ? (instr / base - 1.0) * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  ExperimentConfig config;
  config.kernel = kernel_from_string(args.get("kernel", "outer"));
  config.strategy = args.get(
      "strategy",
      config.kernel == Kernel::kOuter ? "DynamicOuter" : "DynamicMatrix");
  config.n = static_cast<std::uint32_t>(
      args.get_int("n", config.kernel == Kernel::kOuter ? 100 : 40));
  config.p = static_cast<std::uint32_t>(args.get_int("p", 20));
  config.scenario = named_scenario(args.get("scenario", "default"));
  config.seed = args.get_int("seed", 20140623);
  if (args.has("beta")) {
    config.phase2_fraction = std::exp(-args.get_double("beta", 4.0));
  }
  const auto overhead_reps =
      static_cast<std::uint32_t>(args.get_int("overhead-reps", 10));

  bench::print_header(
      "Trajectory overlay",
      "sampled " + config.strategy + " run vs ODE prediction",
      "kernel=" + to_string(config.kernel) + ", n=" + std::to_string(config.n) +
          ", p=" + std::to_string(config.p) + ", scenario=" +
          config.scenario.name);

  InstrumentOptions options;
  options.sample_interval = args.get_double("sample-interval", 0.0);
  InstrumentedRep rep;
  run_instrumented_rep(config, derive_stream(config.seed, "rep.0"), options,
                       rep);

  const TrajectoryModel model(config.kernel, rep.outcome.speeds, config.n);
  const auto& names = rep.sampler.channel_names();
  std::size_t unmarked_idx = 0, knowledge_idx = names.size();
  for (std::size_t c = 0; c < names.size(); ++c) {
    if (names[c] == "unmarked_fraction") unmarked_idx = c;
    if (names[c] == "knowledge.mean") knowledge_idx = c;
  }

  CsvWriter csv(std::cout, {"time", "unmarked_sim", "unmarked_ode", "abs_err",
                            "knowledge_mean"});
  double max_err = 0.0;
  for (const auto& sample : rep.sampler.samples()) {
    const double sim = sample.values[unmarked_idx];
    const double ode = model.unmarked_fraction(sample.time);
    const double err = std::abs(sim - ode);
    // The first-order model loses meaning once nearly everything is
    // marked; compare where the prediction still has mass.
    if (ode >= 0.02) max_err = std::max(max_err, err);
    csv.row({sample.time, sim, ode, err,
             knowledge_idx < names.size() ? sample.values[knowledge_idx]
                                          : -1.0});
  }
  std::cout << "# max |sim - ode| (where ode >= 0.02): "
            << CsvWriter::format(max_err, 4) << "\n";
  if (rep.phase_switched) {
    std::cout << "# phase switch at t=" << rep.phase_switch_time << " with "
              << rep.phase_switch_tasks_remaining
              << " tasks remaining (e^-beta target: "
              << CsvWriter::format(
                     std::exp(-rep.outcome.beta) *
                     static_cast<double>(config.kernel == Kernel::kOuter
                                             ? std::uint64_t{config.n} *
                                                   config.n
                                             : std::uint64_t{config.n} *
                                                   config.n * config.n))
              << ")\n";
  }

  if (overhead_reps > 0) {
    // Warm both paths, then measure two things:
    //  - the figure protocol (what fig01 --trace-out actually does:
    //    one instrumented rep out of `overhead_reps`), which carries
    //    the < 5% acceptance gate, and
    //  - the worst case of instrumenting every rep, reported for
    //    transparency about the per-rep cost of the metrics stack.
    time_reps(config, 1, 0);
    time_reps(config, 1, 1);
    constexpr int kRounds = 7;
    const auto [base_fig, instr_fig] =
        min_over_rounds(config, overhead_reps, 1, kRounds);
    const auto [base_all, instr_all] =
        min_over_rounds(config, overhead_reps, overhead_reps, kRounds);
    std::cout << "# perf (figure protocol, 1 of " << overhead_reps
              << " reps instrumented): plain=" << CsvWriter::format(base_fig, 4)
              << "s instrumented=" << CsvWriter::format(instr_fig, 4)
              << "s overhead=" << CsvWriter::format(pct(base_fig, instr_fig), 2)
              << "% (gate: < 5%)\n";
    std::cout << "# perf (every rep instrumented): plain="
              << CsvWriter::format(base_all, 4)
              << "s instrumented=" << CsvWriter::format(instr_all, 4)
              << "s overhead=" << CsvWriter::format(pct(base_all, instr_all), 2)
              << "% (min over " << kRounds << " rounds of " << overhead_reps
              << " reps)\n";

    // Flight-recorder telemetry (wall-clock profiler + progress
    // heartbeats) is always-on-capable, so it carries a stricter gate
    // than the metrics stack: < 1% on the figure protocol. Its per-rep
    // cost is O(1) clock reads by construction
    // (tests/obs/profiler_test.cpp pins the count with a counting
    // clock); this measures the same thing in wall time.
    const std::uint32_t telemetry_reps = std::max(100u, overhead_reps);
    const auto experiment_sec = [&](bool telemetry) {
      double best = std::numeric_limits<double>::infinity();
      for (int round = 0; round < kRounds; ++round) {
        ExperimentConfig run = config;
        run.reps = telemetry_reps;
        run.parallelism = 1;
        std::ostringstream sink;
        ProgressReporter reporter(sink, {});
        if (telemetry) {
          run.profile = true;
          reporter.expect_reps(run.reps);
          run.progress = &reporter;
        }
        const auto start = std::chrono::steady_clock::now();
        run_experiment(run);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
      }
      return best;
    };
    experiment_sec(false);  // warm
    const double plain_sec = experiment_sec(false);
    const double telemetry_sec = experiment_sec(true);
    // The gate itself keys on the derived per-rep cost — 7 clock reads
    // (6 profiler + 1 progress; the count is pinned by a counting
    // clock in tests/obs/profiler_test.cpp) times the measured read
    // cost — because a direct diff of two multi-ms wall times cannot
    // resolve sub-1% reliably on a shared runner.
    const auto read_t0 = std::chrono::steady_clock::now();
    constexpr int kReads = 20000;
    std::uint64_t read_sink = 0;
    for (int i = 0; i < kReads; ++i) read_sink += prof_default_clock();
    const std::chrono::duration<double, std::nano> read_elapsed =
        std::chrono::steady_clock::now() - read_t0;
    if (read_sink == 0) std::cerr << "";
    const double read_ns = read_elapsed.count() / kReads;
    const double rep_ns =
        plain_sec * 1e9 / static_cast<double>(telemetry_reps);
    const double derived_pct = 100.0 * 7.0 * read_ns / rep_ns;
    std::cout << "# perf (profiler+progress, figure protocol): plain="
              << CsvWriter::format(plain_sec, 4)
              << "s observed=" << CsvWriter::format(telemetry_sec, 4)
              << "s direct=" << CsvWriter::format(pct(plain_sec, telemetry_sec), 2)
              << "% derived=7 reads x " << CsvWriter::format(read_ns, 3)
              << "ns / " << CsvWriter::format(rep_ns / 1e3, 4) << "us-rep = "
              << CsvWriter::format(derived_pct, 3) << "% (gate: < 1%)\n";
  }
  return 0;
}
