// Figure 8: behaviour of the outer-product heuristics under the named
// heterogeneity scenarios (unif.1, unif.2, set.3, set.5, dyn.5,
// dyn.20), p = 20 workers, N/l = 100 blocks. Neither the speed
// distribution nor dynamic speed drift should notably affect the
// ranking.
#include "bench/bench_util.hpp"
#include "common/csv.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header("Figure 8", "outer product across scenarios",
                      "p=" + std::to_string(p) + ", n=" + std::to_string(n) +
                          ", reps=" + std::to_string(reps));

  const std::vector<std::string> strategies{
      "DynamicOuter2Phases", "DynamicOuter", "RandomOuter", "SortedOuter"};

  // CSV with the scenario name as the leading column.
  std::vector<std::string> columns{"scenario"};
  for (const auto& s : strategies) {
    columns.push_back(s + ".mean");
    columns.push_back(s + ".sd");
  }
  columns.push_back("Analysis.mean");
  columns.push_back("Analysis.sd");
  CsvWriter csv(std::cout, columns);

  for (const auto& scenario_name : figure8_scenario_names()) {
    std::vector<std::string> cells{scenario_name};
    Summary analysis;
    for (const auto& name : strategies) {
      ExperimentConfig config;
      config.kernel = Kernel::kOuter;
      config.strategy = name;
      config.n = n;
      config.p = p;
      config.scenario = named_scenario(scenario_name);
      config.seed = seed;
      config.reps = reps;
      const ExperimentResult result = run_experiment(config);
      cells.push_back(CsvWriter::format(result.normalized.mean));
      cells.push_back(CsvWriter::format(result.normalized.stddev));
      analysis = result.analysis_ratio;
    }
    cells.push_back(CsvWriter::format(analysis.mean));
    cells.push_back(CsvWriter::format(analysis.stddev));
    csv.row(cells);
  }
  return 0;
}
