// Section 3.6: runtime estimation of beta. Shows that (a) the optimal
// beta computed per heterogeneous draw deviates very little across
// draws, (b) the homogeneous (speed-agnostic) beta is within a few
// percent of the per-draw optimum, and (c) using it costs almost
// nothing in predicted communication volume — so the scheduler only
// needs p and N, not the speeds.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/homogeneous.hpp"
#include "analysis/outer_analysis.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "platform/platform.hpp"
#include "platform/speed_model.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const int tries = static_cast<int>(args.get_int("tries", 50));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  std::cout << "# Section 3.6: runtime estimation of beta (outer product)\n";
  std::cout << "# beta_hom vs per-draw optimal beta over " << tries
            << " draws of speeds U[10,100]\n";

  CsvWriter csv(std::cout,
                {"p", "n", "beta_hom", "beta_het.mean", "beta_het.sd",
                 "beta_het.spread", "rel_diff_pct", "volume_penalty_pct"});

  UniformIntervalSpeeds model(10.0, 100.0);
  Rng rng(derive_stream(seed, "sec36"));
  for (const std::uint32_t p : {10u, 20u, 50u, 100u, 300u, 1000u}) {
    for (const std::uint32_t n : {100u, 1000u}) {
      if (n * n < p) continue;
      const double beta_hom = beta_homogeneous_outer(p, n);
      RunningStats het;
      RunningStats penalty;
      for (int t = 0; t < tries; ++t) {
        const Platform platform = make_platform(model, p, rng);
        OuterAnalysis analysis(platform.relative_speeds(), n);
        const auto opt = analysis.optimal_beta();
        het.push(opt.x);
        // Evaluate the homogeneous beta inside this draw's validity
        // domain (deploying a beta past the cap behaves like the cap).
        const double beta_eff = std::min(beta_hom, analysis.validity_cap());
        penalty.push(100.0 * (analysis.ratio(beta_eff) / opt.f - 1.0));
      }
      const double rel_diff = 100.0 * std::abs(het.mean() - beta_hom) /
                              beta_hom;
      csv.row(std::vector<double>{static_cast<double>(p),
                                  static_cast<double>(n), beta_hom, het.mean(),
                                  het.stddev(), het.max() - het.min(),
                                  rel_diff, penalty.max()});
    }
  }
  std::cout << "# paper: rel diff of beta_hom vs per-draw beta < 5%, "
               "volume penalty <= 0.1%\n";
  std::cout << "# note: rows where beta_hom == p hit the first-order model's "
               "validity cap (beta <= 1/max rs); the deployed-volume penalty "
               "is the operative metric there\n";
  return 0;
}
