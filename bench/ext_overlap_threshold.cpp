// Extension: validating the paper's overlap assumption.
//
// The analysis assumes communication is fully hidden by prefetching "a
// few blocks in advance" (Section 3.1, citing Kreaseck et al. and
// Parashar & Hariri for the observation that the required depth is
// small). This bench makes the claim quantitative: it runs
// DynamicOuter2Phases under the timed engine (serial master uplink)
// and sweeps the prefetch lookahead and the link bandwidth, reporting
// the starvation fraction and the makespan inflation relative to the
// untimed (free-communication) engine.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/engine_timed.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header(
      "Extension (overlap)", "prefetch lookahead needed to hide communication",
      "DynamicOuter2Phases, n=" + std::to_string(n) + ", p=" +
          std::to_string(p) + ", serial master uplink, reps=" +
          std::to_string(reps));

  CsvWriter csv(std::cout, {"bandwidth", "lookahead", "makespan_inflation",
                            "starvation_fraction"});

  OuterStrategyOptions options;
  options.phase2_fraction = 0.012;  // ~ e^{-4.4}

  for (const double relative_bw : {2.0, 4.0, 8.0, 32.0}) {
    for (const std::uint32_t lookahead : {1u, 2u, 4u, 8u, 16u}) {
      double inflation_sum = 0.0;
      double starvation_sum = 0.0;
      for (std::uint32_t r = 0; r < reps; ++r) {
        const std::uint64_t rep_seed =
            derive_stream(seed, "rep." + std::to_string(r));
        Rng speed_rng(derive_stream(rep_seed, "speeds"));
        const Platform platform =
            make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);

        auto untimed_strategy = make_outer_strategy(
            "DynamicOuter2Phases", OuterConfig{n}, p, rep_seed, options);
        const SimResult untimed = simulate(*untimed_strategy, platform);

        auto timed_strategy = make_outer_strategy(
            "DynamicOuter2Phases", OuterConfig{n}, p, rep_seed, options);
        TimedSimConfig config;
        // Bandwidth scaled to the platform: relative_bw = 1 means the
        // link ships exactly as many blocks per unit time as the whole
        // platform computes tasks.
        config.comm.bandwidth = relative_bw * platform.total_speed();
        config.lookahead = lookahead;
        const TimedSimResult timed =
            simulate_timed(*timed_strategy, platform, config);

        inflation_sum += timed.makespan / untimed.makespan;
        starvation_sum += timed.starvation_fraction();
      }
      csv.row(std::vector<double>{relative_bw, static_cast<double>(lookahead),
                                  inflation_sum / reps,
                                  starvation_sum / reps});
    }
  }
  std::cout << "# inflation ~1.0 at small lookahead confirms the paper's "
               "free-communication assumption\n";
  return 0;
}
