// Extension: analytic model for the *pure* data-aware strategies.
//
// The paper's figures show DynamicOuter/DynamicMatrix as
// simulation-only curves. This bench overlays our depletion-cutoff
// estimate (src/analysis/pure_dynamic.hpp) on the measured volumes for
// both kernels, quantifying where the first-order model holds.
#include <iostream>

#include "analysis/pure_dynamic.hpp"
#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "platform/platform.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 5));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {10, 20, 50, 100, 200}));

  bench::print_header("Extension (pure-dynamic model)",
                      "depletion-cutoff estimate vs simulated pure dynamic",
                      "outer n=100 and matmul n=40, speeds U[10,100], reps=" +
                          std::to_string(reps));

  CsvWriter csv(std::cout,
                {"p", "outer.sim", "outer.model", "outer.err_pct",
                 "matmul.sim", "matmul.model", "matmul.err_pct"});

  for (const std::uint32_t p : ps) {
    auto measure = [&](Kernel kernel, const std::string& strategy,
                       std::uint32_t n, double& sim, double& model) {
      ExperimentConfig config;
      config.kernel = kernel;
      config.strategy = strategy;
      config.n = n;
      config.p = p;
      config.seed = seed;
      config.reps = reps;
      const ExperimentResult result = run_experiment(config);
      sim = result.normalized.mean;
      model = 0.0;
      for (const auto& rep : result.reps) {
        const Platform platform(rep.speeds);
        model += kernel == Kernel::kOuter
                     ? pure_dynamic_outer_ratio(platform.relative_speeds(), n)
                     : pure_dynamic_matmul_ratio(platform.relative_speeds(), n);
      }
      model /= static_cast<double>(result.reps.size());
    };

    double outer_sim = 0.0, outer_model = 0.0;
    double mm_sim = 0.0, mm_model = 0.0;
    measure(Kernel::kOuter, "DynamicOuter", 100, outer_sim, outer_model);
    measure(Kernel::kMatmul, "DynamicMatrix", 40, mm_sim, mm_model);
    csv.row(std::vector<double>{
        static_cast<double>(p), outer_sim, outer_model,
        100.0 * (outer_model / outer_sim - 1.0), mm_sim, mm_model,
        100.0 * (mm_model / mm_sim - 1.0)});
  }
  std::cout << "# model = depletion cutoff (worker stalls when its L-shape "
               "holds < 1 unprocessed task)\n";
  return 0;
}
