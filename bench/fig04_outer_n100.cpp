// Figure 4: all outer-product strategies plus the analysis curve,
// vectors of N/l = 100 blocks ((N/l)^2 = 10,000 tasks).
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", bench::default_p_grid()));

  bench::print_header("Figure 4",
                      "outer product, all strategies + analysis",
                      "n=" + std::to_string(n) +
                          " blocks, speeds U[10,100], beta from homogeneous "
                          "analysis, reps=" +
                          std::to_string(reps));

  const auto points = sweep_worker_count(
      Kernel::kOuter, n, ps, paper_default_scenario(),
      {"DynamicOuter2Phases", "DynamicOuter", "RandomOuter", "SortedOuter"},
      true, seed, reps);
  print_sweep_csv(points, "p", std::cout);
  bench::maybe_dump_trajectory(args, Kernel::kOuter, n,
                               paper_default_scenario(), seed);
  return 0;
}
