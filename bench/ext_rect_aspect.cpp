// Extension: rectangular outer products. Fixes the domain area at
// 100x100 blocks-equivalent and sweeps the aspect ratio, showing (a)
// the geometric (R+C)/(2 sqrt(RC)) penalty predicted by the generalized
// analysis and (b) that the proportional-acquisition DynamicRect2Phases
// still tracks its analysis on non-square domains.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "platform/platform.hpp"
#include "rect/rect_analysis.hpp"
#include "rect/rect_strategies.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto p = static_cast<std::uint32_t>(args.get_int("p", 20));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);

  bench::print_header(
      "Extension (rectangular)", "aspect-ratio sweep at fixed area",
      "area = 10000 block-tasks, p=" + std::to_string(p) + ", reps=" +
          std::to_string(reps));

  CsvWriter csv(std::cout,
                {"rows", "cols", "aspect_penalty", "beta", "analysis",
                 "Dynamic2P.mean", "Dynamic2P.sd", "Random.mean"});

  const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
      {100, 100}, {50, 200}, {25, 400}, {20, 500}, {10, 1000}};

  for (const auto& [rows, cols] : shapes) {
    const RectConfig config{rows, cols};
    RunningStats dynamic_stats, random_stats, analysis_stats;
    double beta = 0.0;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng speed_rng(derive_stream(rep_seed, "speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);
      RectAnalysis analysis(platform.relative_speeds(), config);
      beta = analysis.optimal_beta().x;
      analysis_stats.push(analysis.ratio(beta));

      auto dynamic = make_rect_strategy("DynamicRect2Phases", config, p,
                                        rep_seed, std::exp(-beta));
      dynamic_stats.push(
          static_cast<double>(simulate(*dynamic, platform).total_blocks) /
          analysis.lower_bound());

      auto random = make_rect_strategy("RandomRect", config, p, rep_seed);
      random_stats.push(
          static_cast<double>(simulate(*random, platform).total_blocks) /
          analysis.lower_bound());
    }
    csv.row(std::vector<double>{
        static_cast<double>(rows), static_cast<double>(cols),
        rect_aspect_penalty(config), beta, analysis_stats.mean(),
        dynamic_stats.mean(), dynamic_stats.stddev(), random_stats.mean()});
  }
  std::cout << "# normalized by LB = 2 sqrt(RC) sum sqrt(rs); the analysis "
               "carries the (R+C)/(2 sqrt(RC)) phase-1 penalty\n";
  return 0;
}
