// Microbenchmark (google-benchmark): master-side decision cost per work
// request for each strategy. The paper argues data-aware scheduling is
// "not computationally expensive"; this quantifies it.
#include <benchmark/benchmark.h>

#include <memory>

#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"

namespace {

using namespace hetsched;

void BM_OuterRequest(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t workers = 16;
  OuterStrategyOptions options;
  options.phase2_fraction = 0.02;
  std::unique_ptr<Strategy> strategy;
  std::uint32_t next_worker = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    if (!strategy || strategy->unassigned_tasks() == 0) {
      state.PauseTiming();
      strategy = make_outer_strategy(name, OuterConfig{n}, workers,
                                     requests + 1, options);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(strategy->on_request(next_worker));
    next_worker = (next_worker + 1) % workers;
    ++requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}

void BM_MatmulRequest(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t workers = 16;
  MatmulStrategyOptions options;
  options.phase2_fraction = 0.05;
  std::unique_ptr<Strategy> strategy;
  std::uint32_t next_worker = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    if (!strategy || strategy->unassigned_tasks() == 0) {
      state.PauseTiming();
      strategy = make_matmul_strategy(name, MatmulConfig{n}, workers,
                                      requests + 1, options);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(strategy->on_request(next_worker));
    next_worker = (next_worker + 1) % workers;
    ++requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}

}  // namespace

BENCHMARK_CAPTURE(BM_OuterRequest, RandomOuter, "RandomOuter")->Arg(100);
BENCHMARK_CAPTURE(BM_OuterRequest, SortedOuter, "SortedOuter")->Arg(100);
BENCHMARK_CAPTURE(BM_OuterRequest, DynamicOuter, "DynamicOuter")->Arg(100);
BENCHMARK_CAPTURE(BM_OuterRequest, DynamicOuter2Phases, "DynamicOuter2Phases")
    ->Arg(100);
BENCHMARK_CAPTURE(BM_MatmulRequest, RandomMatrix, "RandomMatrix")->Arg(40);
BENCHMARK_CAPTURE(BM_MatmulRequest, SortedMatrix, "SortedMatrix")->Arg(40);
BENCHMARK_CAPTURE(BM_MatmulRequest, DynamicMatrix, "DynamicMatrix")->Arg(40);
BENCHMARK_CAPTURE(BM_MatmulRequest, DynamicMatrix2Phases,
                  "DynamicMatrix2Phases")
    ->Arg(40);

BENCHMARK_MAIN();
