// Microbenchmark (google-benchmark): master-side decision cost per work
// request for each strategy. The paper argues data-aware scheduling is
// "not computationally expensive"; this quantifies it.
//
// Also carries the EventCore overhead gate: BM_*EngineEvents measure
// whole-simulation ns/event for the flat, timed and DAG engines, and
// BM_HeapBaseline measures raw binary-heap push/pop on the same
// machine. CI compares the engine/heap ratio against the recorded
// baselines in bench/baselines/scheduler_overhead.json and fails on a
// >2x regression — the ratio cancels out host speed, so the gate
// tracks the refactor's per-event cost, not the runner's CPU.
#include <benchmark/benchmark.h>

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "dag/cholesky.hpp"
#include "dag/dag_engine.hpp"
#include "matmul/matmul_factory.hpp"
#include "outer/outer_factory.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/engine_timed.hpp"

namespace {

using namespace hetsched;

void BM_OuterRequest(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t workers = 16;
  OuterStrategyOptions options;
  options.phase2_fraction = 0.02;
  std::unique_ptr<Strategy> strategy;
  std::uint32_t next_worker = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    if (!strategy || strategy->unassigned_tasks() == 0) {
      state.PauseTiming();
      strategy = make_outer_strategy(name, OuterConfig{n}, workers,
                                     requests + 1, options);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(strategy->on_request(next_worker));
    next_worker = (next_worker + 1) % workers;
    ++requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}

void BM_MatmulRequest(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t workers = 16;
  MatmulStrategyOptions options;
  options.phase2_fraction = 0.05;
  std::unique_ptr<Strategy> strategy;
  std::uint32_t next_worker = 0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    if (!strategy || strategy->unassigned_tasks() == 0) {
      state.PauseTiming();
      strategy = make_matmul_strategy(name, MatmulConfig{n}, workers,
                                      requests + 1, options);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(strategy->on_request(next_worker));
    next_worker = (next_worker + 1) % workers;
    ++requests;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}

// Machine-speed calibration for the engine gate: the event loop is a
// binary heap at heart, so raw heap churn is the natural unit of "one
// event's worth of machinery" on this host.
void BM_HeapBaseline(benchmark::State& state) {
  using Entry = std::pair<double, std::uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  constexpr int kDepth = 64;
  std::uint64_t seq = 0;
  double t = 0.0;
  for (int i = 0; i < kDepth; ++i) heap.push({t += 0.7, seq++});
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const Entry top = heap.top();
    heap.pop();
    heap.push({top.first + 1.3, seq++});
    benchmark::DoNotOptimize(heap.size());
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}

void BM_FlatEngineEvents(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Platform platform({10, 15, 20, 25, 30, 40, 50, 80});
  std::uint64_t events = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto strategy =
        make_outer_strategy("DynamicOuter", OuterConfig{n}, 8, ++seed);
    state.ResumeTiming();
    const SimResult result = simulate(*strategy, platform);
    benchmark::DoNotOptimize(result.makespan);
    events += result.total_tasks_done;  // one TaskDone event per task
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_TimedEngineEvents(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Platform platform({10, 15, 20, 25, 30, 40, 50, 80});
  std::uint64_t events = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto strategy =
        make_outer_strategy("DynamicOuter", OuterConfig{n}, 8, ++seed);
    state.ResumeTiming();
    const TimedSimResult result = simulate_timed(*strategy, platform);
    benchmark::DoNotOptimize(result.makespan);
    events += result.total_tasks_done;  // one TaskDone per task...
    for (const auto& w : result.workers) {
      events += w.messages_received;  // ...plus one arrival per message
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_DagEngineEvents(benchmark::State& state) {
  const auto tiles = static_cast<std::uint32_t>(state.range(0));
  const CholeskyGraph ch = build_cholesky_graph(tiles);
  Platform platform({10, 15, 20, 25, 30, 40, 50, 80});
  std::uint64_t events = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    CriticalPathDagPolicy policy;
    const DagSimResult result =
        simulate_dag(ch.graph, platform, policy, ++seed);
    benchmark::DoNotOptimize(result.makespan);
    events += result.total_tasks_done;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

}  // namespace

BENCHMARK(BM_HeapBaseline);
BENCHMARK(BM_FlatEngineEvents)->Arg(60);
BENCHMARK(BM_TimedEngineEvents)->Arg(60);
BENCHMARK(BM_DagEngineEvents)->Arg(16);

BENCHMARK_CAPTURE(BM_OuterRequest, RandomOuter, "RandomOuter")->Arg(100);
BENCHMARK_CAPTURE(BM_OuterRequest, SortedOuter, "SortedOuter")->Arg(100);
BENCHMARK_CAPTURE(BM_OuterRequest, DynamicOuter, "DynamicOuter")->Arg(100);
BENCHMARK_CAPTURE(BM_OuterRequest, DynamicOuter2Phases, "DynamicOuter2Phases")
    ->Arg(100);
BENCHMARK_CAPTURE(BM_MatmulRequest, RandomMatrix, "RandomMatrix")->Arg(40);
BENCHMARK_CAPTURE(BM_MatmulRequest, SortedMatrix, "SortedMatrix")->Arg(40);
BENCHMARK_CAPTURE(BM_MatmulRequest, DynamicMatrix, "DynamicMatrix")->Arg(40);
BENCHMARK_CAPTURE(BM_MatmulRequest, DynamicMatrix2Phases,
                  "DynamicMatrix2Phases")
    ->Arg(40);

BENCHMARK_MAIN();
