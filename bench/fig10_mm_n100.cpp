// Figure 10: all matrix-multiplication strategies plus the analysis
// curve, matrices of N/l = 100 blocks (10^6 tasks).
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 3));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps =
      bench::to_u32(args.get_int_list("p", {50, 100, 200, 300}));

  bench::print_header("Figure 10",
                      "matrix multiplication, large matrices",
                      "n=" + std::to_string(n) + " blocks (" +
                          std::to_string(static_cast<std::uint64_t>(n) * n * n) +
                          " tasks), reps=" + std::to_string(reps));

  const auto points = sweep_worker_count(
      Kernel::kMatmul, n, ps, paper_default_scenario(),
      {"DynamicMatrix2Phases", "DynamicMatrix", "RandomMatrix", "SortedMatrix"},
      true, seed, reps);
  print_sweep_csv(points, "p", std::cout);
  return 0;
}
