// Ablation: what does knowing the speeds buy? Compares the paper's
// speed-agnostic global switch (pool <= e^{-beta} N^2 tasks) against a
// speed-aware variant that switches each worker individually at its
// analytic x_k(beta) — supporting the paper's Section 3.6 claim that
// the agnostic rule loses almost nothing.
#include <cmath>
#include <iostream>

#include "analysis/homogeneous.hpp"
#include "bench/bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "outer/dynamic_outer.hpp"
#include "outer/per_worker_switch.hpp"
#include "platform/lower_bound.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace hetsched;
  const CliArgs args(argc, argv);
  const auto n = static_cast<std::uint32_t>(args.get_int("n", 100));
  const auto reps = static_cast<std::uint32_t>(args.get_int("reps", 10));
  const std::uint64_t seed = args.get_int("seed", 20140623);
  const auto ps = bench::to_u32(args.get_int_list("p", {10, 20, 50, 100, 200}));

  bench::print_header(
      "Ablation (switch rule)",
      "speed-agnostic global switch vs speed-aware per-worker switch",
      "outer product, n=" + std::to_string(n) + ", beta from homogeneous "
          "analysis, reps=" + std::to_string(reps));

  CsvWriter csv(std::cout, {"p", "global.mean", "global.sd",
                            "per_worker.mean", "per_worker.sd",
                            "aware_gain_pct"});

  for (const std::uint32_t p : ps) {
    const double beta = beta_homogeneous_outer(p, n);
    RunningStats global_stats, aware_stats;
    for (std::uint32_t r = 0; r < reps; ++r) {
      const std::uint64_t rep_seed =
          derive_stream(seed, "rep." + std::to_string(r));
      Rng speed_rng(derive_stream(rep_seed, "speeds"));
      const Platform platform =
          make_platform(UniformIntervalSpeeds(10.0, 100.0), p, speed_rng);
      const double lb = outer_lower_bound(n, platform.relative_speeds());

      DynamicOuterStrategy global(
          OuterConfig{n}, p, rep_seed,
          static_cast<std::uint64_t>(std::llround(
              std::exp(-beta) * static_cast<double>(n) * n)));
      global_stats.push(simulate(global, platform).normalized_volume(lb));

      PerWorkerSwitchOuterStrategy aware(OuterConfig{n}, platform.speeds(),
                                         rep_seed, beta);
      aware_stats.push(simulate(aware, platform).normalized_volume(lb));
    }
    csv.row(std::vector<double>{
        static_cast<double>(p), global_stats.mean(), global_stats.stddev(),
        aware_stats.mean(), aware_stats.stddev(),
        100.0 * (1.0 - aware_stats.mean() / global_stats.mean())});
  }
  std::cout << "# aware_gain_pct: communication saved by knowing speeds "
               "(paper: negligible)\n";
  return 0;
}
